/**
 * @file
 * IndexedHeap — an addressable d-ary (4-ary) binary-comparison heap
 * for the off-line oracle hot paths (OPG's penalty order, Belady's
 * next-use order).
 *
 * Design, chosen for the access pattern of oracle replay (one victim
 * pop per miss, plus a burst of key updates every time a
 * deterministic miss enters or leaves a gap):
 *
 *  - push() returns a stable Handle that survives every subsequent
 *    operation until that element is erased; callers store the handle
 *    in their block index and get O(log n) update-key without the
 *    erase+insert round trip (and double rebalance) a std::set
 *    forces;
 *  - 4-ary layout: the sift loops touch one cache line per level and
 *    the tree is half as deep as a binary heap, which is where a heap
 *    beats a red-black tree on wide fan-out workloads;
 *  - storage is two flat vectors (slots + heap order), zero per-node
 *    allocation; erased slots are threaded onto a free list through
 *    their position field, so steady-state churn never allocates
 *    (the event-queue slab pattern).
 *
 * The comparator orders the *minimum* to the top. Keys need not be
 * unique for correctness, but deterministic victim selection requires
 * the comparator to induce a total order (callers embed the block id
 * in the key, exactly like the std::set implementations replaced).
 */

#ifndef PACACHE_UTIL_INDEXED_HEAP_HH
#define PACACHE_UTIL_INDEXED_HEAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace pacache
{

/** Addressable 4-ary min-heap; see the file comment for the contract. */
template <typename Key, typename Compare = std::less<Key>>
class IndexedHeap
{
  public:
    using Handle = std::uint32_t;

    explicit IndexedHeap(Compare cmp = Compare{}) : less(std::move(cmp)) {}

    std::size_t size() const { return order.size(); }
    bool empty() const { return order.empty(); }

    void
    clear()
    {
        order.clear();
        slots.clear();
        freeHead = kNone;
    }

    void
    reserve(std::size_t n)
    {
        order.reserve(n);
        slots.reserve(n);
    }

    /** Insert a key; the returned handle is stable until erase/pop. */
    Handle
    push(Key key)
    {
        Handle h;
        if (freeHead != kNone) {
            h = freeHead;
            freeHead = slots[h].pos;
            slots[h].key = std::move(key);
        } else {
            h = static_cast<Handle>(slots.size());
            slots.push_back(Slot{std::move(key), 0});
        }
        slots[h].pos = static_cast<std::uint32_t>(order.size());
        order.push_back(h);
        siftUp(slots[h].pos);
        return h;
    }

    /** The minimum key (heap must be non-empty). */
    const Key &
    top() const
    {
        PACACHE_ASSERT(!order.empty(), "top() on empty IndexedHeap");
        return slots[order[0]].key;
    }

    /** Handle of the minimum element (heap must be non-empty). */
    Handle
    topHandle() const
    {
        PACACHE_ASSERT(!order.empty(), "topHandle() on empty IndexedHeap");
        return order[0];
    }

    /** Key currently stored under a live handle. */
    const Key &key(Handle h) const { return slots[h].key; }

    /** Remove the minimum element. */
    void
    pop()
    {
        PACACHE_ASSERT(!order.empty(), "pop() on empty IndexedHeap");
        erase(order[0]);
    }

    /** Remove the element behind a live handle. */
    void
    erase(Handle h)
    {
        const std::uint32_t pos = slots[h].pos;
        const Handle last = order.back();
        order.pop_back();
        if (pos < order.size()) {
            order[pos] = last;
            slots[last].pos = pos;
            if (!siftUp(pos))
                siftDown(pos);
        }
        slots[h].pos = freeHead; // thread onto the free list
        freeHead = h;
    }

    /** Replace the key behind a live handle and restore heap order. */
    void
    update(Handle h, Key key)
    {
        slots[h].key = std::move(key);
        const std::uint32_t pos = slots[h].pos;
        if (!siftUp(pos))
            siftDown(pos);
    }

    /**
     * Test hook: check position back-pointers and the heap property;
     * panics on violation. O(n).
     */
    void
    validate() const
    {
        for (std::uint32_t i = 0; i < order.size(); ++i) {
            PACACHE_ASSERT(slots[order[i]].pos == i,
                           "IndexedHeap position back-pointer drift");
            if (i > 0) {
                const std::uint32_t parent = (i - 1) / kArity;
                PACACHE_ASSERT(
                    !less(slots[order[i]].key, slots[order[parent]].key),
                    "IndexedHeap property violated at index ", i);
            }
        }
    }

  private:
    static constexpr std::uint32_t kArity = 4;
    static constexpr Handle kNone = static_cast<Handle>(-1);

    struct Slot
    {
        Key key;
        std::uint32_t pos; //!< index into order; next-free link when dead
    };

    /** @return true if the element moved (so siftDown can be skipped). */
    bool
    siftUp(std::uint32_t pos)
    {
        const Handle h = order[pos];
        const std::uint32_t start = pos;
        while (pos > 0) {
            const std::uint32_t parent = (pos - 1) / kArity;
            if (!less(slots[h].key, slots[order[parent]].key))
                break;
            order[pos] = order[parent];
            slots[order[pos]].pos = pos;
            pos = parent;
        }
        order[pos] = h;
        slots[h].pos = pos;
        return pos != start;
    }

    void
    siftDown(std::uint32_t pos)
    {
        const Handle h = order[pos];
        const std::uint32_t n = static_cast<std::uint32_t>(order.size());
        while (true) {
            const std::uint32_t first = pos * kArity + 1;
            if (first >= n)
                break;
            std::uint32_t best = first;
            const std::uint32_t end =
                first + kArity < n ? first + kArity : n;
            for (std::uint32_t c = first + 1; c < end; ++c) {
                if (less(slots[order[c]].key, slots[order[best]].key))
                    best = c;
            }
            if (!less(slots[order[best]].key, slots[h].key))
                break;
            order[pos] = order[best];
            slots[order[pos]].pos = pos;
            pos = best;
        }
        order[pos] = h;
        slots[h].pos = pos;
    }

    std::vector<Slot> slots;
    std::vector<Handle> order;
    Handle freeHead = kNone;
    [[no_unique_address]] Compare less{};
};

} // namespace pacache

#endif // PACACHE_UTIL_INDEXED_HEAP_HH
