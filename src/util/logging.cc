#include "util/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace pacache
{

namespace
{
bool quiet = false;
} // namespace

void
setQuietLogging(bool q)
{
    quiet = q;
}

bool
quietLogging()
{
    return quiet;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets tests assert on panics.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace pacache
