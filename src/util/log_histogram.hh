#pragma once
// Bounded-memory log-bucketed (HDR-style) histogram.
//
// Values are binned into 64 linear sub-buckets per power-of-two
// octave, covering [2^-26, 2^35) — roughly 15 ns to 1 year when the
// unit is seconds — plus one underflow/zero bucket below and a
// clamped top bucket above. The footprint is a fixed ~31 KB
// regardless of how many samples are recorded, and any quantile is
// off from the exact nearest-rank sample by at most half a bucket
// width: kMaxRelativeError = 1/128 < 1%.
//
// merge() is exact on the bucket counts (addition), so a histogram
// sharded across workers and merged afterwards reports the same
// bucket-derived statistics as one recorded serially. The exact
// floating-point sum() is kept alongside for reconciliation against
// external totals; being an ordered reduction it can differ in the
// last ulps across shard layouts, so deterministic cross-job
// reporting should use bucketSum()/bucketMean(), which only depend
// on the (commutative) bucket counts.

#include <cstdint>
#include <vector>

namespace pacache
{

class LogHistogram
{
  public:
    static constexpr int kMinExp = -26;     // smallest octave: 2^-26
    static constexpr int kMaxExp = 35;      // one past largest octave
    static constexpr int kSubBuckets = 64;  // linear bins per octave
    static constexpr int kOctaves = kMaxExp - kMinExp;
    static constexpr int kNumBuckets = 1 + kOctaves * kSubBuckets;
    // Worst-case relative distance from a bucket midpoint to any
    // value binned in that bucket: half the relative bucket width.
    static constexpr double kMaxRelativeError =
        0.5 / static_cast<double>(kSubBuckets);

    void record(double v) { recordN(v, 1); }
    void recordN(double v, std::uint64_t n);

    std::uint64_t count() const { return total_; }
    bool empty() const { return total_ == 0; }

    // Exact (order-dependent) sum of every recorded value.
    double sum() const { return sumExact_; }
    double mean() const
    {
        return total_ == 0 ? 0.0
                           : sumExact_ / static_cast<double>(total_);
    }

    // Bucket-derived sum/mean: counts times midpoints, accumulated
    // in fixed bucket order. Identical across any shard/merge
    // layout, within kMaxRelativeError of the exact values.
    double bucketSum() const;
    double bucketMean() const;

    double min() const { return total_ == 0 ? 0.0 : minSeen_; }
    double max() const { return total_ == 0 ? 0.0 : maxSeen_; }

    // Nearest-rank quantile (rank = max(1, ceil(p * count))),
    // answered as the midpoint of the bucket holding that rank,
    // clamped to [min(), max()] so quantile(0) == min() and
    // quantile(1) == max() hold exactly. Returns 0 when empty.
    double quantile(double p) const;

    void merge(const LogHistogram &other);
    void clear();

    // Bucket introspection, used by tests and JSON emission. Bucket
    // 0 collects zero and negative values; its midpoint is 0.
    static int bucketIndex(double v);
    static double bucketLow(int index);
    static double bucketHigh(int index);
    static double bucketMid(int index);
    std::uint64_t bucketCount(int index) const
    {
        return counts_.empty()
                   ? 0
                   : counts_[static_cast<std::size_t>(index)];
    }

  private:
    // Lazily sized to kNumBuckets on first record so an empty
    // histogram (e.g. an unused instrument) costs nothing.
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sumExact_ = 0.0;
    double minSeen_ = 0.0;
    double maxSeen_ = 0.0;

    void ensureBuckets();
};

} // namespace pacache
