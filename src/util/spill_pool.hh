/**
 * @file
 * SpillPool — a shared byte-budgeted residency manager for paged
 * containers that overflow to disk (the bounded-memory oracle tier).
 *
 * Several containers (one per disk for OPG's deterministic-miss sets
 * and next-use indexes, plus the cold-miss bitmap tier) share one
 * pool so a single `--oracle-mem-budget` bounds their *combined*
 * resident footprint. The pool owns three things:
 *
 *  - an intrusive recency list over resident pages with CLOCK-style
 *    second-chance eviction. Every resident page is registered with
 *    its owner (a SpillClient) and byte size; touch() sets a
 *    reference bit rather than splicing the list (cheap enough for
 *    the replay hot path). When the resident total exceeds the
 *    budget, the pool sweeps from the cold end, granting referenced
 *    pages a second chance (move to front, clear the bit) and asking
 *    owners to spill the rest via spillPage(). Pinned pages
 *    (mid-operation) are skipped, which also gives budget = 0 a
 *    well-defined floor: the pages an operation currently touches;
 *  - fixed-size spill slots in one unlinked temporary file, handed
 *    out from per-size free lists. The file is created lazily, so an
 *    unbounded budget never touches the filesystem, and unlinking
 *    means the space is reclaimed on close and never listed;
 *  - pread/pwrite plumbing with EINTR handling, mirroring the
 *    WindowedFuture sidecar discipline: spilled bytes live in the OS
 *    page cache (reclaimable, not charged to the process), which is
 *    exactly what bounds VmHWM while keeping refaults near-memcpy.
 *
 * Single-threaded by design, like the containers it backs: each
 * policy instance owns its pool (shard-parallel replay gives every
 * shard its own).
 */

#ifndef PACACHE_UTIL_SPILL_POOL_HH
#define PACACHE_UTIL_SPILL_POOL_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace pacache
{

/**
 * Owner of spillable resident pages. spillPage() must serialize the
 * page into a spill slot (allocSlot/writeSlot) and forget its
 * resident copy; the pool unregisters the page itself afterwards.
 * The callback must not touch the LRU (add/touch/remove/pin/unpin).
 */
class SpillClient
{
  public:
    virtual ~SpillClient() = default;
    virtual void spillPage(std::uint32_t page) = 0;
};

/** Budgeted LRU + spill-slot allocator; see the file comment. */
class SpillPool
{
  public:
    static constexpr std::uint32_t kNoToken = ~std::uint32_t{0};
    static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

    /** @param budget_bytes resident ceiling (SIZE_MAX = never spill) */
    explicit SpillPool(std::size_t budget_bytes);
    ~SpillPool();

    SpillPool(const SpillPool &) = delete;
    SpillPool &operator=(const SpillPool &) = delete;

    /**
     * Register a resident page and (maybe) evict others to make room.
     * A page added pinned cannot be chosen as a victim until its
     * owner unpins it — add the page *before* populating it if the
     * population can itself trigger pool traffic.
     * @return the page's LRU token.
     */
    std::uint32_t add(SpillClient *owner, std::uint32_t page,
                      std::size_t bytes, bool pinned);

    /**
     * Mark a resident page recently used. Deliberately *not* a list
     * splice: touch runs on every container operation, spilling or
     * not, and moving a node costs scattered writes to three nodes.
     * Instead it sets a second-chance bit that the enforcement sweep
     * spends — a referenced page at the cold end is moved to the
     * front rather than spilled (CLOCK, with the list order standing
     * in for the hand). Inline (with pin/unpin and remove below):
     * the call overhead alone is measurable on the replay hot path.
     */
    void
    touch(std::uint32_t token)
    {
        PACACHE_ASSERT(token < nodes.size() && nodes[token].live,
                       "SpillPool touch of dead token");
        nodes[token].referenced = true;
    }

    /** Unregister a page the owner dropped itself (erase/clear). */
    void
    remove(std::uint32_t token)
    {
        PACACHE_ASSERT(token < nodes.size() && nodes[token].live,
                       "SpillPool remove of dead token");
        Node &n = nodes[token];
        unlink(token);
        resident -= n.bytes;
        --liveNodes;
        n.live = false;
        n.owner = nullptr;
        n.pins = 0;
        n.referenced = false;
        freeNodes.push_back(token);
    }

    /** Pin: exempt from eviction while an operation holds refs. */
    void
    pin(std::uint32_t token)
    {
        PACACHE_ASSERT(token < nodes.size() && nodes[token].live,
                       "SpillPool pin of dead token");
        ++nodes[token].pins;
    }

    /** Unpin (enforcement waits for the next add()). */
    void
    unpin(std::uint32_t token)
    {
        PACACHE_ASSERT(token < nodes.size() && nodes[token].live &&
                           nodes[token].pins > 0,
                       "SpillPool unpin imbalance");
        // No enforcement here: spilling at unpin would invalidate
        // pointers a query just returned (find() into the page). The
        // next add() re-enforces, so the excess is bounded by the
        // pages one operation pins.
        --nodes[token].pins;
    }

    /** Acquire a spill slot of exactly @p bytes (size-class reuse). */
    std::uint64_t allocSlot(std::size_t bytes);
    /** Return a slot to its size-class free list. */
    void freeSlot(std::uint64_t offset, std::size_t bytes);

    void writeSlot(std::uint64_t offset, const void *data,
                   std::size_t bytes);
    void readSlot(std::uint64_t offset, void *data,
                  std::size_t bytes) const;

    std::size_t budgetBytes() const { return budget; }
    std::size_t residentBytes() const { return resident; }
    std::size_t residentPages() const { return liveNodes; }
    /** Total bytes ever placed under management (monotone). */
    std::uint64_t spillFileBytes() const { return fileEnd; }
    /** Pages pushed out by budget enforcement (monotone). */
    std::uint64_t evictions() const { return evicted; }

    /** Test hook: LRU/accounting consistency; panics on drift. */
    void checkInvariants() const;

  private:
    struct Node
    {
        SpillClient *owner = nullptr;
        std::uint32_t page = 0;
        std::uint32_t bytes = 0;
        std::uint32_t pins = 0;
        std::uint32_t prev = kNoToken;
        std::uint32_t next = kNoToken;
        bool live = false;
        /** Second-chance bit set by touch(), spent by enforce(). */
        bool referenced = false;
    };

    void
    linkFront(std::uint32_t token)
    {
        Node &n = nodes[token];
        n.prev = kNoToken;
        n.next = head;
        if (head != kNoToken)
            nodes[head].prev = token;
        head = token;
        if (tail == kNoToken)
            tail = token;
    }

    void
    unlink(std::uint32_t token)
    {
        Node &n = nodes[token];
        if (n.prev != kNoToken)
            nodes[n.prev].next = n.next;
        else
            head = n.next;
        if (n.next != kNoToken)
            nodes[n.next].prev = n.prev;
        else
            tail = n.prev;
        n.prev = n.next = kNoToken;
    }

    void enforce();
    void ensureFile();

    std::size_t budget;
    std::size_t resident = 0;
    std::size_t liveNodes = 0;
    std::uint64_t evicted = 0;
    std::uint64_t fileEnd = 0;
    int fd = -1;

    std::vector<Node> nodes;
    std::vector<std::uint32_t> freeNodes;
    std::uint32_t head = kNoToken; //!< MRU end
    std::uint32_t tail = kNoToken; //!< LRU end
    /** Spill-slot free lists, one per distinct slot size. */
    std::vector<std::pair<std::size_t, std::vector<std::uint64_t>>>
        slotFree;
};

} // namespace pacache

#endif // PACACHE_UTIL_SPILL_POOL_HH
