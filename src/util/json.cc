#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "util/logging.hh"

namespace pacache
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os) : out(os) {}

JsonWriter::~JsonWriter()
{
    // Scopes left open are a caller bug, but a destructor must not
    // throw; close them so the output at least parses.
    finish();
}

void
JsonWriter::finish()
{
    while (!scopes.empty()) {
        if (scopes.back() == 'o')
            endObject();
        else
            endArray();
    }
}

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!scopes.empty() && !firstInScope)
        out << ',';
    firstInScope = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out << '{';
    scopes.push_back('o');
    firstInScope = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PACACHE_ASSERT(!scopes.empty() && scopes.back() == 'o',
                   "endObject outside an object");
    scopes.pop_back();
    out << '}';
    firstInScope = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out << '[';
    scopes.push_back('a');
    firstInScope = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PACACHE_ASSERT(!scopes.empty() && scopes.back() == 'a',
                   "endArray outside an array");
    scopes.pop_back();
    out << ']';
    firstInScope = false;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    PACACHE_ASSERT(!scopes.empty() && scopes.back() == 'o',
                   "key outside an object");
    PACACHE_ASSERT(!afterKey, "two keys in a row");
    separate();
    out << '"' << jsonEscape(k) << "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    separate();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    out << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view v)
{
    separate();
    out << v;
    return *this;
}

// ---- parser ---------------------------------------------------------

bool
JsonValue::asBool() const
{
    PACACHE_ASSERT(isBool(), "JSON value is not a bool");
    return boolValue;
}

double
JsonValue::asNumber() const
{
    PACACHE_ASSERT(isNumber(), "JSON value is not a number");
    return numberValue;
}

const std::string &
JsonValue::asString() const
{
    PACACHE_ASSERT(isString(), "JSON value is not a string");
    return stringValue;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    PACACHE_ASSERT(isArray(), "JSON value is not an array");
    return arrayValue;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    PACACHE_ASSERT(isObject(), "JSON value is not an object");
    return objectValue;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    const auto it = objectValue.find(key);
    return it == objectValue.end() ? nullptr : &it->second;
}

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos != text.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        PACACHE_FATAL("JSON parse error at line ", line, ", column ",
                      col, ": ", what);
    }

    void
    skipWhitespace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': {
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return JsonValue{};
          }
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.valueKind = JsonValue::Kind::Object;
        skipWhitespace();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            JsonValue key = parseString();
            skipWhitespace();
            expect(':');
            v.objectValue[key.stringValue] = parseValue();
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.valueKind = JsonValue::Kind::Array;
        skipWhitespace();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.arrayValue.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.valueKind = JsonValue::Kind::String;
        std::string &out = v.stringValue;
        while (true) {
            const char c = peek();
            ++pos;
            if (c == '"')
                return v;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++pos;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // Config files are ASCII in practice; encode the
                // code point as UTF-8 without surrogate handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("unknown escape sequence");
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.valueKind = JsonValue::Kind::Bool;
        if (consumeLiteral("true")) {
            v.boolValue = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.boolValue = false;
            return v;
        }
        fail("invalid literal");
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            fail("expected a value");
        const std::string token(text.substr(start, pos - start));
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("malformed number '" + token + "'");
        JsonValue v;
        v.valueKind = JsonValue::Kind::Number;
        v.numberValue = parsed;
        return v;
    }

    std::string_view text;
    std::size_t pos = 0;
};

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).parseDocument();
}

} // namespace pacache
