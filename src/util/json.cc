#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "util/logging.hh"

namespace pacache
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os) : out(os) {}

JsonWriter::~JsonWriter()
{
    // Scopes left open are a caller bug, but a destructor must not
    // throw; close them so the output at least parses.
    finish();
}

void
JsonWriter::finish()
{
    while (!scopes.empty()) {
        if (scopes.back() == 'o')
            endObject();
        else
            endArray();
    }
}

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!scopes.empty() && !firstInScope)
        out << ',';
    firstInScope = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out << '{';
    scopes.push_back('o');
    firstInScope = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PACACHE_ASSERT(!scopes.empty() && scopes.back() == 'o',
                   "endObject outside an object");
    scopes.pop_back();
    out << '}';
    firstInScope = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out << '[';
    scopes.push_back('a');
    firstInScope = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PACACHE_ASSERT(!scopes.empty() && scopes.back() == 'a',
                   "endArray outside an array");
    scopes.pop_back();
    out << ']';
    firstInScope = false;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    PACACHE_ASSERT(!scopes.empty() && scopes.back() == 'o',
                   "key outside an object");
    PACACHE_ASSERT(!afterKey, "two keys in a row");
    separate();
    out << '"' << jsonEscape(k) << "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    separate();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    out << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view v)
{
    separate();
    out << v;
    return *this;
}

} // namespace pacache
