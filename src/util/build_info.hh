/**
 * @file
 * Build identification captured at CMake configure time: version, git
 * revision, compiler, C++ standard, and build type. Used by the CLI
 * tools' --version output and embedded into emitted metric files so a
 * result can always be traced back to the binary that produced it.
 */

#ifndef PACACHE_UTIL_BUILD_INFO_HH
#define PACACHE_UTIL_BUILD_INFO_HH

#include <string>

namespace pacache
{

class JsonWriter;

/** Static facts about this build of the simulator. */
struct BuildInfo
{
    const char *version;      //!< project version, e.g. "0.2.0"
    const char *gitDescribe;  //!< `git describe --always --dirty`
    const char *compiler;     //!< compiler id + version
    const char *cxxStandard;  //!< e.g. "C++20"
    const char *buildType;    //!< e.g. "RelWithDebInfo"
};

/** The build info baked into this binary. */
const BuildInfo &buildInfo();

/** One-line banner for `--version`, e.g. "pacache_sim 0.2.0 (...)". */
std::string buildInfoBanner(const char *tool_name);

/** Append the build info as a JSON object value. */
void writeBuildInfoJson(JsonWriter &json);

} // namespace pacache

#endif // PACACHE_UTIL_BUILD_INFO_HH
