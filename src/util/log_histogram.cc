#include "util/log_histogram.hh"

#include <algorithm>
#include <cmath>

namespace pacache
{

void LogHistogram::ensureBuckets()
{
    if (counts_.empty())
        counts_.assign(kNumBuckets, 0);
}

int LogHistogram::bucketIndex(double v)
{
    if (!(v > 0.0))
        return 0; // zero, negative, or NaN
    int e = 0;
    const double m = std::frexp(v, &e); // v = m * 2^e, m in [0.5, 1)
    const int octave = (e - 1) - kMinExp;
    if (octave < 0)
        return 1; // underflow: smallest positive bucket
    if (octave >= kOctaves)
        return kNumBuckets - 1; // overflow: clamped top bucket
    const double u = 2.0 * m;   // in [1, 2)
    int sub = static_cast<int>((u - 1.0) * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double LogHistogram::bucketLow(int index)
{
    if (index <= 0)
        return 0.0;
    const int octave = (index - 1) / kSubBuckets;
    const int sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                      kMinExp + octave);
}

double LogHistogram::bucketHigh(int index)
{
    if (index <= 0)
        return 0.0;
    const int octave = (index - 1) / kSubBuckets;
    const int sub = (index - 1) % kSubBuckets;
    return std::ldexp(1.0 +
                          static_cast<double>(sub + 1) / kSubBuckets,
                      kMinExp + octave);
}

double LogHistogram::bucketMid(int index)
{
    if (index <= 0)
        return 0.0;
    return 0.5 * (bucketLow(index) + bucketHigh(index));
}

void LogHistogram::recordN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    ensureBuckets();
    counts_[static_cast<std::size_t>(bucketIndex(v))] += n;
    if (total_ == 0)
    {
        minSeen_ = v;
        maxSeen_ = v;
    }
    else
    {
        minSeen_ = std::min(minSeen_, v);
        maxSeen_ = std::max(maxSeen_, v);
    }
    total_ += n;
    sumExact_ += v * static_cast<double>(n);
}

double LogHistogram::bucketSum() const
{
    double s = 0.0;
    for (int i = 0; i < kNumBuckets && !counts_.empty(); ++i)
        if (const std::uint64_t c =
                counts_[static_cast<std::size_t>(i)])
            s += static_cast<double>(c) * bucketMid(i);
    return s;
}

double LogHistogram::bucketMean() const
{
    return total_ == 0 ? 0.0
                       : bucketSum() / static_cast<double>(total_);
}

double LogHistogram::quantile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    const double target = p * static_cast<double>(total_);
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(target));
    rank = std::max<std::uint64_t>(rank, 1);
    rank = std::min(rank, total_);
    // The extreme ranks are tracked exactly; nearest-rank at rank 1
    // is the minimum and at rank total_ the maximum.
    if (rank == 1)
        return minSeen_;
    if (rank == total_)
        return maxSeen_;
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i)
    {
        seen += counts_[static_cast<std::size_t>(i)];
        if (seen >= rank)
            return std::min(std::max(bucketMid(i), minSeen_),
                            maxSeen_);
    }
    return maxSeen_; // unreachable: seen ends at total_ >= rank
}

void LogHistogram::merge(const LogHistogram &other)
{
    if (other.total_ == 0)
        return;
    ensureBuckets();
    for (int i = 0; i < kNumBuckets; ++i)
        counts_[static_cast<std::size_t>(i)] +=
            other.counts_[static_cast<std::size_t>(i)];
    if (total_ == 0)
    {
        minSeen_ = other.minSeen_;
        maxSeen_ = other.maxSeen_;
    }
    else
    {
        minSeen_ = std::min(minSeen_, other.minSeen_);
        maxSeen_ = std::max(maxSeen_, other.maxSeen_);
    }
    total_ += other.total_;
    sumExact_ += other.sumExact_;
}

void LogHistogram::clear()
{
    counts_.clear();
    total_ = 0;
    sumExact_ = 0.0;
    minSeen_ = 0.0;
    maxSeen_ = 0.0;
}

} // namespace pacache
