#include "util/bloom_filter.hh"

#include <cmath>

#include "util/logging.hh"

namespace pacache
{

namespace
{

/** Stafford variant 13 of the splitmix64 finalizer. */
uint64_t
mix(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

BloomFilter::BloomFilter(std::size_t num_bits, std::size_t num_hashes)
    : bits((num_bits + 63) / 64, 0), numHashes(num_hashes)
{
    PACACHE_ASSERT(num_bits > 0, "bloom filter needs at least one bit");
    PACACHE_ASSERT(num_hashes > 0, "bloom filter needs at least one hash");
}

std::size_t
BloomFilter::probe(uint64_t key, std::size_t i) const
{
    // Kirsch-Mitzenmacher double hashing: h_i = h1 + i*h2.
    const uint64_t h1 = mix(key);
    const uint64_t h2 = mix(key ^ 0x5851f42d4c957f2dULL) | 1;
    return (h1 + i * h2) % sizeBits();
}

void
BloomFilter::insert(uint64_t key)
{
    for (std::size_t i = 0; i < numHashes; ++i) {
        const std::size_t p = probe(key, i);
        bits[p / 64] |= 1ULL << (p % 64);
    }
    ++numInsertions;
}

bool
BloomFilter::test(uint64_t key) const
{
    for (std::size_t i = 0; i < numHashes; ++i) {
        const std::size_t p = probe(key, i);
        if (!(bits[p / 64] & (1ULL << (p % 64))))
            return false;
    }
    return true;
}

bool
BloomFilter::testAndInsert(uint64_t key)
{
    const bool present = test(key);
    insert(key);
    return !present;
}

void
BloomFilter::clear()
{
    for (auto &w : bits)
        w = 0;
    numInsertions = 0;
}

double
BloomFilter::expectedFalsePositiveRate() const
{
    const double k = static_cast<double>(numHashes);
    const double n = static_cast<double>(numInsertions);
    const double m = static_cast<double>(sizeBits());
    return std::pow(1.0 - std::exp(-k * n / m), k);
}

} // namespace pacache
