/**
 * @file
 * SparseSeenSet — exact first-ever-seen tracking for sparse 64-bit
 * key spaces (raw sector addresses from real traces) under a fixed
 * memory budget.
 *
 * The cache's cold-miss counter needs one exact membership test per
 * miss: "has this block ever been demand-accessed?" Dense block
 * spaces use per-disk bitmaps; sparse spaces used to fall back to a
 * hash set whose memory grew with every unique block. This tier
 * bounds that:
 *
 *  - keys are grouped into 4096-bit bitmap pages (512 B per page,
 *    pageNo = key >> 12), resident pages budgeted by a private
 *    SpillPool and spilled to its unlinked file beyond the budget —
 *    the *paged bitmap is authoritative and exact*;
 *  - a counting sketch (two splitmix64-hashed 4-bit saturating
 *    counters per key) shadows every inserted key. The sketch is
 *    *only a presence filter*: it has no false negatives, so
 *    "definitely never seen" answers skip faulting spilled pages —
 *    a first touch of a spilled page's range inserts into a fresh
 *    partial overlay page with zero disk reads. A partial page
 *    merges with its spilled bits (one pread + OR) only when the
 *    sketch reports a possible prior insert, and at spill time.
 *
 * Semantics are bit-identical to the unbounded hash set: testAndSet
 * returns true exactly once per distinct key, in any access order.
 */

#ifndef PACACHE_UTIL_SEEN_FILTER_HH
#define PACACHE_UTIL_SEEN_FILTER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_map.hh"
#include "util/spill_pool.hh"

namespace pacache
{

/** Budgeted exact seen-set over sparse keys; see the file comment. */
class SparseSeenSet : public SpillClient
{
  public:
    /** Resident-page budget (bytes) before pages spill. */
    static constexpr std::size_t kDefaultBudget = std::size_t(4)
                                                  << 20;
    /** log2 of sketch counters; 2^21 nibbles = 1 MiB, lazy. */
    static constexpr unsigned kDefaultSketchLog2 = 21;

    explicit SparseSeenSet(
        std::size_t budget_bytes = kDefaultBudget,
        unsigned sketch_log2 = kDefaultSketchLog2);

    /** Record @p key; @return true iff this is its first insert. */
    bool testAndSet(std::uint64_t key);

    std::size_t size() const { return inserted; }
    std::size_t pages() const { return metas.size(); }
    std::size_t residentPages() const
    {
        return pool.residentPages();
    }
    /** Full-page refaults forced by a sketch "maybe". */
    std::uint64_t pageFaults() const { return faults; }
    /** Read-free inserts into fresh overlays ("definitely new"). */
    std::uint64_t blindInserts() const { return blind; }
    /** Overlay merges forced by a sketch "maybe" on a partial. */
    std::uint64_t overlayMerges() const { return merges; }

    /** SpillPool callback: merge-if-partial, serialize, drop. */
    void spillPage(std::uint32_t page) override;

    /** Test hook: metadata coherence; panics on drift. */
    void checkInvariants() const;

  private:
    static constexpr std::size_t kPageBits = 4096;
    static constexpr std::size_t kWords = kPageBits / 64;
    static constexpr std::size_t kPageIoBytes = kWords * 8;
    static constexpr std::uint32_t kNone32 = ~std::uint32_t{0};

    using PageWords = std::array<std::uint64_t, kWords>;

    struct Meta
    {
        std::uint32_t slab = kNone32;
        std::uint32_t token = SpillPool::kNoToken;
        std::uint64_t slot = SpillPool::kNoSlot;
        /**
         * Resident slab holds only bits set since its creation; the
         * spill slot holds earlier bits (slot is always valid when
         * partial). Cleared by merging.
         */
        bool partial = false;
        bool dirty = false;
    };

    /** Resident cost charged to the pool budget per page. */
    static constexpr std::size_t pageCost()
    {
        return kPageIoBytes + sizeof(Meta) + 32;
    }

    std::uint32_t allocSlab();
    /** Make page @p id resident (pinned); fault or overlay. */
    void sketchAdd(std::uint64_t key);
    bool sketchMaybe(std::uint64_t key) const;
    void mergeOverlay(Meta &m);

    FlatMap<std::uint64_t, std::uint32_t> index; //!< pageNo -> id
    std::vector<Meta> metas;
    std::vector<PageWords> slabs;
    std::vector<std::uint32_t> freeSlabs;
    SpillPool pool;

    /** 4-bit saturating counters, two per key; lazy allocation. */
    std::vector<std::uint8_t> sketch;
    std::uint64_t sketchMask = 0;
    unsigned sketchLog2;

    std::size_t inserted = 0;
    std::uint64_t faults = 0;
    std::uint64_t blind = 0;
    std::uint64_t merges = 0;
};

} // namespace pacache

#endif // PACACHE_UTIL_SEEN_FILTER_HH
