/**
 * @file
 * Minimal fixed-width text table printer used by the benchmark
 * harnesses to emit paper-style tables and figure series.
 */

#ifndef PACACHE_UTIL_TABLE_HH
#define PACACHE_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace pacache
{

/** A simple column-aligned table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (cells are pre-formatted strings). */
    void row(std::vector<std::string> cells);

    /** Render to a stream with column alignment and a rule line. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with the given precision. */
std::string fmt(double v, int precision = 3);

/** Format a percentage (0.163 -> "16.3%"). */
std::string fmtPct(double fraction, int precision = 1);

} // namespace pacache

#endif // PACACHE_UTIL_TABLE_HH
