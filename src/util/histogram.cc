#include "util/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace pacache
{

IntervalHistogram
IntervalHistogram::geometric(double min_edge, double max_edge,
                             std::size_t bins_per_decade)
{
    PACACHE_ASSERT(min_edge > 0 && max_edge > min_edge,
                   "bad geometric histogram edges");
    PACACHE_ASSERT(bins_per_decade > 0, "need at least one bin per decade");
    std::vector<double> edges;
    const double step = std::pow(10.0, 1.0 / bins_per_decade);
    for (double e = min_edge; e < max_edge * (1 + 1e-12); e *= step)
        edges.push_back(e);
    if (edges.back() < max_edge)
        edges.push_back(max_edge);
    return IntervalHistogram(std::move(edges));
}

IntervalHistogram::IntervalHistogram(std::vector<double> edges)
    : binEdges(std::move(edges)), binCounts(binEdges.size() + 1, 0)
{
    PACACHE_ASSERT(!binEdges.empty(), "histogram needs at least one edge");
    PACACHE_ASSERT(std::is_sorted(binEdges.begin(), binEdges.end()),
                   "histogram edges must ascend");
}

void
IntervalHistogram::record(double value)
{
    auto it = std::upper_bound(binEdges.begin(), binEdges.end(), value);
    binCounts[static_cast<std::size_t>(it - binEdges.begin())]++;
    ++total;
    sum += value;
}

void
IntervalHistogram::reset()
{
    std::fill(binCounts.begin(), binCounts.end(), 0);
    total = 0;
    sum = 0.0;
}

void
IntervalHistogram::merge(const IntervalHistogram &other)
{
    PACACHE_ASSERT(binEdges == other.binEdges,
                   "cannot merge histograms with different bin edges");
    for (std::size_t i = 0; i < binCounts.size(); ++i)
        binCounts[i] += other.binCounts[i];
    total += other.total;
    sum += other.sum;
}

double
IntervalHistogram::mean() const
{
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double
IntervalHistogram::cdf(double x) const
{
    if (total == 0)
        return 0.0;

    // Cumulative count of all bins whose upper edge is <= x, plus a
    // linear share of the bin containing x.
    uint64_t below = 0;
    double lower = 0.0;
    for (std::size_t i = 0; i < binCounts.size(); ++i) {
        const double upper = i < binEdges.size()
            ? binEdges[i]
            : std::numeric_limits<double>::infinity();
        if (x >= upper) {
            below += binCounts[i];
            lower = upper;
            continue;
        }
        double frac = 0.0;
        if (std::isfinite(upper) && upper > lower)
            frac = (x - lower) / (upper - lower);
        return (static_cast<double>(below) +
                frac * static_cast<double>(binCounts[i])) /
               static_cast<double>(total);
    }
    return 1.0;
}

double
IntervalHistogram::quantile(double p) const
{
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);

    const double target = p * static_cast<double>(total);
    double below = 0.0;
    double lower = 0.0;
    for (std::size_t i = 0; i < binCounts.size(); ++i) {
        const bool overflow = i >= binEdges.size();
        const double upper = overflow ? binEdges.back() : binEdges[i];
        const double count = static_cast<double>(binCounts[i]);
        if (below + count >= target) {
            if (overflow || count == 0)
                return upper;
            const double frac = (target - below) / count;
            return lower + frac * (upper - lower);
        }
        below += count;
        lower = upper;
    }
    return binEdges.back();
}

} // namespace pacache
