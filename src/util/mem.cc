#include "util/mem.hh"

#include <cstdio>
#include <cstring>

namespace pacache
{

namespace
{

/** Read a "VmXXX:  1234 kB" line from /proc/self/status, in bytes. */
uint64_t
statusLineBytes(const char *key)
{
    FILE *fh = std::fopen("/proc/self/status", "r");
    if (!fh)
        return 0;
    const std::size_t key_len = std::strlen(key);
    char line[256];
    uint64_t bytes = 0;
    while (std::fgets(line, sizeof(line), fh)) {
        if (std::strncmp(line, key, key_len) != 0)
            continue;
        unsigned long long kb = 0;
        if (std::sscanf(line + key_len, ": %llu kB", &kb) == 1)
            bytes = static_cast<uint64_t>(kb) * 1024;
        break;
    }
    std::fclose(fh);
    return bytes;
}

} // namespace

uint64_t
peakRssBytes()
{
    return statusLineBytes("VmHWM");
}

uint64_t
currentRssBytes()
{
    return statusLineBytes("VmRSS");
}

} // namespace pacache
