#include "util/random.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pacache
{

uint64_t
Rng::next64()
{
    // SplitMix64 (Steele, Lea, Flood 2014).
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return (next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    PACACHE_ASSERT(n > 0, "below() needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double mean)
{
    PACACHE_ASSERT(mean > 0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::pareto(double shape, double scale)
{
    PACACHE_ASSERT(shape > 0 && scale > 0, "pareto parameters positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return scale / std::pow(u, 1.0 / shape);
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
{
    PACACHE_ASSERT(n > 0, "zipf population must be positive");
    cdf.resize(n);
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
        cdf[k] = sum;
    }
    for (auto &v : cdf)
        v /= sum;
    cdf.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        --it;
    return static_cast<std::size_t>(it - cdf.begin());
}

} // namespace pacache
