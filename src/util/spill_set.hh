/**
 * @file
 * SpillableOrderedSet — an OrderedSet-shaped container whose pages
 * overflow to disk under a SpillPool byte budget (the bounded-memory
 * oracle tier).
 *
 * Layout mirrors OrderedSet: sorted fixed-capacity pages (kPageCap
 * keys), a contiguous always-resident index of page maxima for the
 * locate step, and a dead prefix per page so erase-at-minimum (OPG's
 * deterministic-miss retirement pattern) is an O(1) bump. The
 * difference is residency: page payloads live in reusable slabs
 * registered with a shared SpillPool; when the pool's budget
 * overflows, least-recently-touched pages are serialized into
 * fixed-size slots of the pool's unlinked spill file and dropped
 * from RAM, then faulted back (one pread) on the next touch.
 *
 * Exact by construction: spilling changes *where* a page's bytes
 * live, never what they are, so every query answers exactly what the
 * in-memory OrderedSet would — including neighbors() across page
 * boundaries, which is answered from the always-resident per-page
 * [minKey, maxKey] metadata without faulting adjacent pages. Keys
 * and mapped values must be trivially copyable (they are memcpy'd
 * through spill slots).
 *
 * Usage contract: attach() a pool before the first insert; query
 * methods are const but may fault pages in and out (physical state
 * is mutable by design); pointers returned by find() are valid only
 * until the next operation on any container sharing the pool; range
 * visitors must not mutate pool-sharing containers.
 */

#ifndef PACACHE_UTIL_SPILL_SET_HH
#define PACACHE_UTIL_SPILL_SET_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/ordered_set.hh"
#include "util/spill_pool.hh"

namespace pacache
{

/** Budget-spillable ordered set/map; see the file comment. */
template <typename Key, typename Mapped = void>
class SpillableOrderedSet : public SpillClient
{
    static constexpr bool kHasMapped = !std::is_void_v<Mapped>;
    using Value =
        std::conditional_t<kHasMapped, Mapped, detail::NoMapped>;
    static_assert(std::is_trivially_copyable_v<Key>,
                  "spillable keys are memcpy'd through spill slots");
    static_assert(std::is_trivially_copyable_v<Value>,
                  "spillable values are memcpy'd through spill slots");

  public:
    /** Predecessor/successor/membership answered by one locate. */
    struct Neighbors
    {
        bool hasPred = false;
        bool hasSucc = false;
        bool present = false;
        Key pred{};
        Key succ{};
    };

    SpillableOrderedSet() = default;

    ~SpillableOrderedSet() override
    {
        if (pool)
            clear();
    }

    SpillableOrderedSet(const SpillableOrderedSet &) = delete;
    SpillableOrderedSet &
    operator=(const SpillableOrderedSet &) = delete;

    /**
     * Moves are only for container setup (vector growth before
     * attach); the pool holds a SpillClient pointer afterwards, so a
     * populated set must stay put.
     */
    SpillableOrderedSet(SpillableOrderedSet &&other) noexcept
    {
        PACACHE_ASSERT(other.pool == nullptr && other.count == 0,
                       "cannot move an attached SpillableOrderedSet");
    }

    /** Bind to the pool that budgets this set's resident pages. */
    void
    attach(SpillPool &p)
    {
        PACACHE_ASSERT(pool == nullptr || count == 0,
                       "re-attach of a populated SpillableOrderedSet");
        pool = &p;
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Drop all elements and return every slot; stays attached. */
    void
    clear()
    {
        for (std::uint32_t id : order) {
            Meta &m = metas[id];
            if (m.slab != kNone32)
                pool->remove(m.token);
            if (m.slot != SpillPool::kNoSlot)
                pool->freeSlot(m.slot, slotBytes());
        }
        metas.clear();
        freeMetas.clear();
        order.clear();
        maxes.clear();
        slabs.clear();
        freeSlabs.clear();
        count = 0;
    }

    /** Insert a key (set form). @return false if already present. */
    bool
    insert(const Key &k)
        requires(!kHasMapped)
    {
        return insertImpl(k, Value{});
    }

    /** Insert a key → value pair. @return false if key present. */
    bool
    insert(const Key &k, Value v)
        requires(kHasMapped)
    {
        return insertImpl(k, std::move(v));
    }

    /** @return true if the key was present and is now removed. */
    bool
    erase(const Key &k)
    {
        const std::size_t oi = pageFor(k);
        if (oi == order.size())
            return false;
        const std::uint32_t id = acquire(oi);
        Slab &s = slabs[metas[id].slab];
        const std::size_t pos = lowerBound(s, k);
        if (pos == s.keys.size() || !(s.keys[pos] == k)) {
            release(id);
            return false;
        }
        if (!eraseAt(oi, id, pos))
            release(id);
        return true;
    }

    /** Erase @p k reporting its neighbors in the same locate. */
    bool
    eraseWithNeighbors(const Key &k, Neighbors &nb)
    {
        nb = Neighbors{};
        const std::size_t oi = pageFor(k);
        if (oi == order.size()) {
            if (!order.empty()) {
                nb.hasPred = true;
                nb.pred = maxes.back();
            }
            return false;
        }
        const std::uint32_t id = acquire(oi);
        const std::size_t pos = fillNeighbors(oi, id, k, nb);
        if (!nb.present) {
            release(id);
            return false;
        }
        if (!eraseAt(oi, id, pos))
            release(id);
        return true;
    }

    /** Insert @p k reporting the neighbors it landed between. */
    bool
    insertWithNeighbors(const Key &k, Neighbors &nb)
        requires(!kHasMapped)
    {
        nb = Neighbors{};
        if (order.empty()) {
            insertImpl(k, Value{});
            return true;
        }
        if (maxes.back() < k) {
            nb.hasPred = true;
            nb.pred = maxes.back();
            appendToLast(k, Value{});
            return true;
        }
        const std::size_t oi = pageFor(k);
        const std::uint32_t id = acquire(oi);
        const std::size_t pos = fillNeighbors(oi, id, k, nb);
        if (nb.present) {
            release(id);
            return false;
        }
        insertAt(oi, id, pos, k, Value{});
        release(id);
        return true;
    }

    bool
    contains(const Key &k) const
    {
        auto *self = mut();
        const std::size_t oi = self->pageFor(k);
        if (oi == order.size())
            return false;
        const std::uint32_t id = self->acquire(oi);
        const Slab &s = self->slabs[self->metas[id].slab];
        const std::size_t pos = lowerBound(s, k);
        const bool hit =
            pos < s.keys.size() && s.keys[pos] == k;
        self->release(id);
        return hit;
    }

    /**
     * @return pointer to the mapped value, or null. The pointer is
     * valid only until the next operation on any pool-sharing
     * container (the page may spill).
     */
    const Mapped *
    find(const Key &k) const
        requires(kHasMapped)
    {
        auto *self = mut();
        const std::size_t oi = self->pageFor(k);
        if (oi == order.size())
            return nullptr;
        const std::uint32_t id = self->acquire(oi);
        Slab &s = self->slabs[self->metas[id].slab];
        const std::size_t pos = lowerBound(s, k);
        const Mapped *out =
            (pos < s.keys.size() && s.keys[pos] == k)
                ? &s.vals[pos]
                : nullptr;
        self->release(id);
        return out;
    }

    /** Erase @p k moving its value into @p out in a single locate. */
    template <typename M = Mapped>
    bool
    take(const Key &k, M &out)
        requires(kHasMapped && std::is_same_v<M, Mapped>)
    {
        const std::size_t oi = pageFor(k);
        if (oi == order.size())
            return false;
        const std::uint32_t id = acquire(oi);
        Slab &s = slabs[metas[id].slab];
        const std::size_t pos = lowerBound(s, k);
        if (pos == s.keys.size() || !(s.keys[pos] == k)) {
            release(id);
            return false;
        }
        out = std::move(s.vals[pos]);
        if (!eraseAt(oi, id, pos))
            release(id);
        return true;
    }

    /** Largest key strictly less than @p k. */
    bool
    predecessor(const Key &k, Key &out) const
    {
        const Neighbors nb = neighbors(k);
        if (nb.hasPred)
            out = nb.pred;
        return nb.hasPred;
    }

    /** Smallest key strictly greater than @p k. */
    bool
    successor(const Key &k, Key &out) const
    {
        const Neighbors nb = neighbors(k);
        if (nb.hasSucc)
            out = nb.succ;
        return nb.hasSucc;
    }

    /** Predecessor, successor, and membership in one locate. */
    Neighbors
    neighbors(const Key &k) const
    {
        auto *self = mut();
        Neighbors nb;
        if (order.empty())
            return nb;
        const std::size_t oi = self->pageFor(k);
        if (oi == order.size()) {
            nb.hasPred = true;
            nb.pred = maxes.back();
            return nb;
        }
        const std::uint32_t id = self->acquire(oi);
        self->fillNeighbors(oi, id, k, nb);
        self->release(id);
        return nb;
    }

    /**
     * Visit every key with lo < key < hi in ascending order. Pages
     * whose minKey falls beyond hi are skipped without faulting. The
     * visitor must not mutate pool-sharing containers.
     */
    template <typename Fn>
    void
    forEachInRange(const Key &lo, const Key &hi, Fn &&fn) const
    {
        auto *self = mut();
        std::size_t oi = self->firstPageAbove(lo);
        for (bool leading = true; oi < order.size(); ++oi,
                                  leading = false) {
            // Page ranges are monotone: a minKey at or beyond hi
            // ends the scan without faulting the page in.
            if (!(self->metas[order[oi]].minKey < hi))
                return;
            const std::uint32_t id = self->acquire(oi);
            const Slab &s = self->slabs[self->metas[id].slab];
            std::size_t pos = leading ? upperBound(s, lo) : s.start;
            for (; pos < s.keys.size(); ++pos) {
                if (!(s.keys[pos] < hi)) {
                    self->release(id);
                    return;
                }
                if constexpr (kHasMapped)
                    fn(s.keys[pos], s.vals[pos]);
                else
                    fn(s.keys[pos]);
            }
            self->release(id);
        }
    }

    /** Visit every element in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        auto *self = mut();
        for (std::size_t oi = 0; oi < order.size(); ++oi) {
            const std::uint32_t id = self->acquire(oi);
            const Slab &s = self->slabs[self->metas[id].slab];
            for (std::size_t pos = s.start; pos < s.keys.size();
                 ++pos) {
                if constexpr (kHasMapped)
                    fn(s.keys[pos], s.vals[pos]);
                else
                    fn(s.keys[pos]);
            }
            self->release(id);
        }
    }

    /** Pages currently held in RAM (testing/telemetry). */
    std::size_t
    residentPages() const
    {
        std::size_t n = 0;
        for (std::uint32_t id : order)
            n += metas[id].slab != kNone32;
        return n;
    }

    std::size_t pages() const { return order.size(); }
    std::uint64_t faults() const { return faulted; }

    /**
     * Test hook: verify page ordering, metadata coherence, and the
     * element count; faults every page in. Panics on drift.
     */
    void
    checkInvariants() const
    {
        auto *self = mut();
        PACACHE_ASSERT(maxes.size() == order.size(),
                       "SpillableOrderedSet maxes drift");
        std::size_t seen = 0;
        for (std::size_t oi = 0; oi < order.size(); ++oi) {
            const std::uint32_t id = self->acquire(oi);
            const Meta &m = self->metas[id];
            const Slab &s = self->slabs[m.slab];
            PACACHE_ASSERT(s.start < s.keys.size(),
                           "empty spillable page");
            PACACHE_ASSERT(s.keys.size() - s.start <= kPageCap,
                           "oversized spillable page");
            PACACHE_ASSERT(m.minKey == s.keys[s.start] &&
                               m.maxKey == s.keys.back(),
                           "spillable page min/max drift");
            PACACHE_ASSERT(maxes[oi] == m.maxKey,
                           "spillable maxes drift");
            if constexpr (kHasMapped)
                PACACHE_ASSERT(s.vals.size() == s.keys.size(),
                               "spillable parallel-array drift");
            for (std::size_t i = s.start + 1; i < s.keys.size();
                 ++i)
                PACACHE_ASSERT(s.keys[i - 1] < s.keys[i],
                               "spillable page not sorted");
            if (oi > 0)
                PACACHE_ASSERT(maxes[oi - 1] < m.minKey,
                               "spillable pages out of order");
            seen += s.keys.size() - s.start;
            self->release(id);
        }
        PACACHE_ASSERT(seen == count,
                       "SpillableOrderedSet count drift");
    }

    /** SpillPool callback: serialize @p page and drop its slab. */
    void
    spillPage(std::uint32_t page) override
    {
        Meta &m = metas[page];
        PACACHE_ASSERT(m.slab != kNone32,
                       "spill of a non-resident page");
        if (m.dirty || m.slot == SpillPool::kNoSlot) {
            if (m.slot == SpillPool::kNoSlot)
                m.slot = pool->allocSlot(slotBytes());
            serialize(slabs[m.slab]);
            pool->writeSlot(m.slot, scratch.data(), slotBytes());
            m.dirty = false;
        }
        Slab &s = slabs[m.slab];
        s.keys.clear();
        if constexpr (kHasMapped)
            s.vals.clear();
        s.start = 0;
        freeSlabs.push_back(m.slab);
        m.slab = kNone32;
        m.token = SpillPool::kNoToken;
    }

  private:
    /** Page split threshold: 256 keys, same as OrderedSet::kSplit. */
    static constexpr std::size_t kPageCap = 256;
    static constexpr std::uint32_t kNone32 = ~std::uint32_t{0};
    static constexpr std::size_t kValBytes =
        kHasMapped ? sizeof(Value) : 0;

    struct Meta
    {
        Key minKey{};
        Key maxKey{};
        std::uint32_t slab = kNone32;
        std::uint32_t token = SpillPool::kNoToken;
        std::uint64_t slot = SpillPool::kNoSlot;
        bool dirty = false;
    };

    struct Slab
    {
        std::vector<Key> keys; //!< sorted, unique in [start, size())
        std::vector<Value> vals;
        std::size_t start = 0; //!< dead-prefix length
    };

    /** Resident cost charged to the pool budget per page. */
    static constexpr std::size_t
    pageBytes()
    {
        return kPageCap * (sizeof(Key) + kValBytes) + sizeof(Slab) +
               sizeof(Meta);
    }

    /** Fixed spill-slot size: count header + full-capacity arrays. */
    static constexpr std::size_t
    slotBytes()
    {
        return sizeof(std::uint64_t) +
               kPageCap * (sizeof(Key) + kValBytes);
    }

    SpillableOrderedSet *
    mut() const
    {
        // Query methods are logically const but physically fault
        // pages in and out; one cast beats `mutable` on every member.
        return const_cast<SpillableOrderedSet *>(this);
    }

    /** Branchless binary search, same contract as OrderedSet's. */
    template <typename Before>
    static const Key *
    search(const Key *first, std::size_t n, Before before)
    {
        while (n > 1) {
            const std::size_t half = n / 2;
            first += before(first[half - 1]) ? half : 0;
            n -= half;
        }
        return first + (n == 1 && before(*first) ? 1 : 0);
    }

    static std::size_t
    lowerBound(const Slab &s, const Key &k)
    {
        const Key *base = s.keys.data();
        return static_cast<std::size_t>(
            search(base + s.start, s.keys.size() - s.start,
                   [&](const Key &x) { return x < k; }) -
            base);
    }

    static std::size_t
    upperBound(const Slab &s, const Key &k)
    {
        const Key *base = s.keys.data();
        return static_cast<std::size_t>(
            search(base + s.start, s.keys.size() - s.start,
                   [&](const Key &x) { return !(k < x); }) -
            base);
    }

    /** Index in order[] of the first page with maxKey >= k. */
    std::size_t
    pageFor(const Key &k) const
    {
        return static_cast<std::size_t>(
            search(maxes.data(), maxes.size(),
                   [&](const Key &x) { return x < k; }) -
            maxes.data());
    }

    /** Index in order[] of the first page with maxKey > k. */
    std::size_t
    firstPageAbove(const Key &k) const
    {
        return static_cast<std::size_t>(
            search(maxes.data(), maxes.size(),
                   [&](const Key &x) { return !(k < x); }) -
            maxes.data());
    }

    std::uint32_t
    allocSlab()
    {
        if (!freeSlabs.empty()) {
            const std::uint32_t sb = freeSlabs.back();
            freeSlabs.pop_back();
            return sb;
        }
        const std::uint32_t sb =
            static_cast<std::uint32_t>(slabs.size());
        slabs.emplace_back();
        return sb;
    }

    std::uint32_t
    allocMeta()
    {
        if (!freeMetas.empty()) {
            const std::uint32_t id = freeMetas.back();
            freeMetas.pop_back();
            metas[id] = Meta{};
            return id;
        }
        const std::uint32_t id =
            static_cast<std::uint32_t>(metas.size());
        metas.emplace_back();
        return id;
    }

    /**
     * Make page order[oi] resident and pinned; @return its id. Every
     * acquire must be paired with release() (unless the page is
     * dropped by eraseAt). May spill other pages to make room.
     */
    std::uint32_t
    acquire(std::size_t oi)
    {
        PACACHE_ASSERT(pool, "SpillableOrderedSet used unattached");
        const std::uint32_t id = order[oi];
        Meta &m = metas[id];
        if (m.slab != kNone32) {
            pool->touch(m.token);
            pool->pin(m.token);
            return id;
        }
        PACACHE_ASSERT(m.slot != SpillPool::kNoSlot,
                       "non-resident page without a spill slot");
        const std::uint32_t sb = allocSlab();
        m.slab = sb;
        deserialize(m.slot, slabs[sb]);
        m.dirty = false;
        ++faulted;
        // Registered pinned so the enforcement sweep inside add()
        // cannot victimize the page we are about to hand out.
        m.token = pool->add(this, id, pageBytes(), true);
        return id;
    }

    void
    release(std::uint32_t id)
    {
        pool->unpin(metas[id].token);
    }

    /** Refresh minKey/maxKey/maxes after a page mutation. */
    void
    syncMeta(std::size_t oi, std::uint32_t id)
    {
        Meta &m = metas[id];
        const Slab &s = slabs[m.slab];
        m.minKey = s.keys[s.start];
        m.maxKey = s.keys.back();
        maxes[oi] = m.maxKey;
        m.dirty = true;
    }

    bool
    insertImpl(const Key &k, Value v)
    {
        if (order.empty()) {
            PACACHE_ASSERT(pool,
                           "SpillableOrderedSet used unattached");
            const std::uint32_t id = allocMeta();
            const std::uint32_t sb = allocSlab();
            metas[id].slab = sb;
            slabs[sb].keys.push_back(k);
            if constexpr (kHasMapped)
                slabs[sb].vals.push_back(std::move(v));
            order.push_back(id);
            maxes.push_back(k);
            count = 1;
            syncMeta(0, id);
            metas[id].token = pool->add(this, id, pageBytes(), false);
            return true;
        }
        // Ascending-insert fast path (bulk cold seeding in sorted
        // order): append to the last page, no locate, no shifting.
        if (maxes.back() < k) {
            appendToLast(k, std::move(v));
            return true;
        }
        const std::size_t oi = pageFor(k);
        const std::uint32_t id = acquire(oi);
        Slab &s = slabs[metas[id].slab];
        const std::size_t pos = lowerBound(s, k);
        if (pos < s.keys.size() && s.keys[pos] == k) {
            release(id);
            return false;
        }
        insertAt(oi, id, pos, k, std::move(v));
        release(id);
        return true;
    }

    void
    appendToLast(const Key &k, Value v)
    {
        const std::size_t oi = order.size() - 1;
        const std::uint32_t id = acquire(oi);
        Slab &s = slabs[metas[id].slab];
        s.keys.push_back(k);
        if constexpr (kHasMapped)
            s.vals.push_back(std::move(v));
        ++count;
        syncMeta(oi, id);
        if (s.keys.size() - s.start > kPageCap)
            splitPage(oi, id);
        release(id);
    }

    /** Same one-locate neighbor fill as OrderedSet, with cross-page
     *  answers taken from resident metadata (no adjacent faults). */
    std::size_t
    fillNeighbors(std::size_t oi, std::uint32_t id, const Key &k,
                  Neighbors &nb)
    {
        const Slab &s = slabs[metas[id].slab];
        const std::size_t pos = lowerBound(s, k);
        nb.present = s.keys[pos] == k;
        if (pos > s.start) {
            nb.hasPred = true;
            nb.pred = s.keys[pos - 1];
        } else if (oi > 0) {
            nb.hasPred = true;
            nb.pred = metas[order[oi - 1]].maxKey;
        }
        const std::size_t succ_pos = nb.present ? pos + 1 : pos;
        if (succ_pos < s.keys.size()) {
            nb.hasSucc = true;
            nb.succ = s.keys[succ_pos];
        } else if (oi + 1 < order.size()) {
            nb.hasSucc = true;
            nb.succ = metas[order[oi + 1]].minKey;
        }
        return pos;
    }

    /** Insert at an already-located position; page must be pinned. */
    void
    insertAt(std::size_t oi, std::uint32_t id, std::size_t pos,
             const Key &k, Value v)
    {
        Slab &s = slabs[metas[id].slab];
        // Reuse a dead-prefix slot when the left side is shorter.
        if (s.start > 0 && pos - s.start < s.keys.size() - pos) {
            std::move(s.keys.begin() + s.start, s.keys.begin() + pos,
                      s.keys.begin() + s.start - 1);
            s.keys[pos - 1] = k;
            if constexpr (kHasMapped) {
                std::move(s.vals.begin() + s.start,
                          s.vals.begin() + pos,
                          s.vals.begin() + s.start - 1);
                s.vals[pos - 1] = std::move(v);
            }
            --s.start;
        } else {
            s.keys.insert(s.keys.begin() + pos, k);
            if constexpr (kHasMapped)
                s.vals.insert(s.vals.begin() + pos, std::move(v));
        }
        ++count;
        syncMeta(oi, id);
        if (s.keys.size() - s.start > kPageCap)
            splitPage(oi, id);
    }

    /**
     * Erase at an already-located position; page must be pinned.
     * @return true if the page was dropped entirely (its pin is gone
     * with it — the caller must then skip release()).
     */
    bool
    eraseAt(std::size_t oi, std::uint32_t id, std::size_t pos)
    {
        Meta &m = metas[id];
        Slab &s = slabs[m.slab];
        --count;
        if (s.keys.size() - s.start == 1) {
            pool->remove(m.token);
            s.keys.clear();
            if constexpr (kHasMapped)
                s.vals.clear();
            s.start = 0;
            freeSlabs.push_back(m.slab);
            if (m.slot != SpillPool::kNoSlot)
                pool->freeSlot(m.slot, slotBytes());
            freeMetas.push_back(id);
            order.erase(order.begin() + oi);
            maxes.erase(maxes.begin() + oi);
            return true;
        }
        // Shift whichever side is shorter; erasing the page minimum
        // (OPG's deterministic-miss pattern) just grows the prefix.
        if (pos - s.start < s.keys.size() - pos - 1) {
            std::move_backward(s.keys.begin() + s.start,
                               s.keys.begin() + pos,
                               s.keys.begin() + pos + 1);
            if constexpr (kHasMapped)
                std::move_backward(s.vals.begin() + s.start,
                                   s.vals.begin() + pos,
                                   s.vals.begin() + pos + 1);
            ++s.start;
            if (s.start >= kPageCap)
                compact(s);
        } else {
            s.keys.erase(s.keys.begin() + pos);
            if constexpr (kHasMapped)
                s.vals.erase(s.vals.begin() + pos);
        }
        syncMeta(oi, id);
        return false;
    }

    static void
    compact(Slab &s)
    {
        s.keys.erase(s.keys.begin(), s.keys.begin() + s.start);
        if constexpr (kHasMapped)
            s.vals.erase(s.vals.begin(), s.vals.begin() + s.start);
        s.start = 0;
    }

    /** Split an over-full pinned page; the right half may spill. */
    void
    splitPage(std::size_t oi, std::uint32_t id)
    {
        compact(slabs[metas[id].slab]);
        const std::uint32_t rightId = allocMeta();
        const std::uint32_t rightSb = allocSlab();
        // allocMeta/allocSlab may reallocate; re-fetch references.
        Meta &m = metas[id];
        Slab &s = slabs[m.slab];
        Slab &r = slabs[rightSb];
        const std::size_t half = s.keys.size() / 2;
        r.keys.assign(s.keys.begin() + half, s.keys.end());
        s.keys.resize(half);
        if constexpr (kHasMapped) {
            r.vals.assign(
                std::make_move_iterator(s.vals.begin() + half),
                std::make_move_iterator(s.vals.end()));
            s.vals.resize(half);
        }
        Meta &rm = metas[rightId];
        rm.slab = rightSb;
        rm.minKey = r.keys.front();
        rm.maxKey = r.keys.back();
        rm.dirty = true;
        m.maxKey = s.keys.back();
        m.minKey = s.keys[s.start];
        m.dirty = true;
        maxes[oi] = m.maxKey;
        order.insert(order.begin() + oi + 1, rightId);
        maxes.insert(maxes.begin() + oi + 1, rm.maxKey);
        // Fully formed before registration: add() may spill it (or
        // any unpinned sibling) straight away under a tight budget.
        metas[rightId].token =
            pool->add(this, rightId, pageBytes(), false);
    }

    void
    serialize(const Slab &s)
    {
        scratch.assign(slotBytes(), 0);
        const std::uint64_t live = s.keys.size() - s.start;
        std::memcpy(scratch.data(), &live, sizeof(live));
        std::memcpy(scratch.data() + sizeof(std::uint64_t),
                    s.keys.data() + s.start, live * sizeof(Key));
        if constexpr (kHasMapped)
            std::memcpy(scratch.data() + sizeof(std::uint64_t) +
                            kPageCap * sizeof(Key),
                        s.vals.data() + s.start,
                        live * sizeof(Value));
    }

    void
    deserialize(std::uint64_t slot, Slab &s)
    {
        scratch.resize(slotBytes());
        pool->readSlot(slot, scratch.data(), slotBytes());
        std::uint64_t live = 0;
        std::memcpy(&live, scratch.data(), sizeof(live));
        PACACHE_ASSERT(live >= 1 && live <= kPageCap,
                       "corrupt spill slot header");
        s.start = 0;
        s.keys.resize(static_cast<std::size_t>(live));
        std::memcpy(s.keys.data(),
                    scratch.data() + sizeof(std::uint64_t),
                    live * sizeof(Key));
        if constexpr (kHasMapped) {
            s.vals.resize(static_cast<std::size_t>(live));
            std::memcpy(s.vals.data(),
                        scratch.data() + sizeof(std::uint64_t) +
                            kPageCap * sizeof(Key),
                        live * sizeof(Value));
        }
    }

    SpillPool *pool = nullptr;
    std::vector<Meta> metas;
    std::vector<std::uint32_t> freeMetas;
    std::vector<std::uint32_t> order; //!< page ids, ascending ranges
    std::vector<Key> maxes; //!< maxes[i] == metas[order[i]].maxKey
    std::vector<Slab> slabs;
    std::vector<std::uint32_t> freeSlabs;
    std::size_t count = 0;
    std::uint64_t faulted = 0;
    std::vector<char> scratch;
};

} // namespace pacache

#endif // PACACHE_UTIL_SPILL_SET_HH
