/**
 * @file
 * OrderedSet — a chunked sorted-vector ordered set/map for the
 * off-line oracle hot paths (OPG's deterministic-miss sets and its
 * resident-by-next-access index).
 *
 * Oracle replay hammers these containers with three queries:
 * predecessor/successor around a probe key (gap pricing), ordered
 * range scans (gap-scoped repricing), and steady insert/erase churn.
 * A node-based std::set answers each with O(log n) *dependent* cache
 * misses; this container instead keeps elements in sorted chunks of
 * at most kSplit contiguous keys:
 *
 *  - locate = one binary search over chunk maxima + one binary search
 *    inside a 2 KiB chunk: two cache-line streams instead of a
 *    pointer chase per level;
 *  - insert/erase = a memmove of whichever side of the position is
 *    shorter (each chunk keeps a dead prefix before `start`, so
 *    erasing near the front shifts the short prefix, not the tail —
 *    OPG's deterministic-miss sets always erase their minimum, which
 *    this turns from a 2 KiB memmove into an O(1) bump of `start`);
 *  - neighbors() answers predecessor, successor, and membership in a
 *    single locate, which is the exact shape of OPG's penalty query.
 *
 * The optional Mapped parameter turns the set into an ordered map
 * with a parallel value array per chunk (used for next-index → heap
 * handle); Mapped = void stores no values. Values should be cheap to
 * move: erase may leave a moved-from copy in the dead prefix until
 * the chunk compacts. Keys must be less-comparable and are kept
 * unique.
 */

#ifndef PACACHE_UTIL_ORDERED_SET_HH
#define PACACHE_UTIL_ORDERED_SET_HH

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace pacache
{

namespace detail
{
struct NoMapped
{
    friend bool operator==(const NoMapped &, const NoMapped &) = default;
};
} // namespace detail

/** Chunked sorted-vector ordered set/map; see the file comment. */
template <typename Key, typename Mapped = void>
class OrderedSet
{
    static constexpr bool kHasMapped = !std::is_void_v<Mapped>;
    using Value =
        std::conditional_t<kHasMapped, Mapped, detail::NoMapped>;

  public:
    /** Predecessor/successor/membership answered by one locate. */
    struct Neighbors
    {
        bool hasPred = false;
        bool hasSucc = false;
        bool present = false;
        Key pred{}; //!< largest key < probe (valid if hasPred)
        Key succ{}; //!< smallest key > probe (valid if hasSucc)
    };

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    void
    clear()
    {
        chunks.clear();
        maxes.clear();
        count = 0;
    }

    /** Insert a key (set form). @return false if already present. */
    bool
    insert(const Key &k)
        requires(!kHasMapped)
    {
        return insertImpl(k, Value{});
    }

    /** Insert a key → value pair. @return false if key present. */
    bool
    insert(const Key &k, Value v)
        requires(kHasMapped)
    {
        return insertImpl(k, std::move(v));
    }

    /** @return true if the key was present and is now removed. */
    bool
    erase(const Key &k)
    {
        const std::size_t ci = chunkFor(k);
        if (ci == chunks.size())
            return false;
        Chunk &c = chunks[ci];
        const std::size_t pos = lowerBound(c, k);
        if (pos == c.keys.size() || c.keys[pos] != k)
            return false;
        eraseAt(ci, pos);
        return true;
    }

    /**
     * Erase @p k and report its neighbors (as they were while k was
     * still present) in the same locate — the shape of OPG's
     * deterministic-miss retirement, which needs the merged gap's
     * endpoints anyway. @return true if k was present (and erased).
     */
    bool
    eraseWithNeighbors(const Key &k, Neighbors &nb)
    {
        nb = Neighbors{};
        const std::size_t ci = chunkFor(k);
        if (ci == chunks.size()) {
            if (!chunks.empty()) {
                nb.hasPred = true;
                nb.pred = chunks.back().keys.back();
            }
            return false;
        }
        const std::size_t pos = fillNeighbors(ci, k, nb);
        if (!nb.present)
            return false;
        eraseAt(ci, pos);
        return true;
    }

    /**
     * Insert @p k and report the neighbors it landed between in the
     * same locate — the shape of OPG's eviction bookkeeping, which
     * reprices the two sub-gaps around the new deterministic miss.
     * @return true if inserted (false if k was already present).
     */
    bool
    insertWithNeighbors(const Key &k, Neighbors &nb)
        requires(!kHasMapped)
    {
        nb = Neighbors{};
        if (chunks.empty()) {
            insertImpl(k, Value{});
            return true;
        }
        std::size_t ci = chunkFor(k);
        if (ci == chunks.size()) {
            nb.hasPred = true;
            nb.pred = chunks.back().keys.back();
            --ci; // k beyond every chunk: append into the last one
            insertAt(ci, chunks[ci].keys.size(), k, Value{});
            return true;
        }
        const std::size_t pos = fillNeighbors(ci, k, nb);
        if (nb.present)
            return false;
        insertAt(ci, pos, k, Value{});
        return true;
    }

    bool
    contains(const Key &k) const
    {
        const std::size_t ci = chunkFor(k);
        if (ci == chunks.size())
            return false;
        const Chunk &c = chunks[ci];
        const std::size_t pos = lowerBound(c, k);
        return pos < c.keys.size() && c.keys[pos] == k;
    }

    /** @return pointer to the mapped value, or null if absent. */
    const Mapped *
    find(const Key &k) const
        requires(kHasMapped)
    {
        const std::size_t ci = chunkFor(k);
        if (ci == chunks.size())
            return nullptr;
        const Chunk &c = chunks[ci];
        const std::size_t pos = lowerBound(c, k);
        if (pos == c.keys.size() || c.keys[pos] != k)
            return nullptr;
        return &c.vals[pos];
    }

    /**
     * Erase @p k and move its mapped value into @p out — a find +
     * erase in a single locate. @return true if k was present.
     */
    template <typename M = Mapped>
    bool
    take(const Key &k, M &out)
        requires(kHasMapped && std::is_same_v<M, Mapped>)
    {
        const std::size_t ci = chunkFor(k);
        if (ci == chunks.size())
            return false;
        Chunk &c = chunks[ci];
        const std::size_t pos = lowerBound(c, k);
        if (pos == c.keys.size() || c.keys[pos] != k)
            return false;
        out = std::move(c.vals[pos]);
        eraseAt(ci, pos);
        return true;
    }

    /** Largest key strictly less than @p k. */
    bool
    predecessor(const Key &k, Key &out) const
    {
        const Neighbors nb = neighbors(k);
        if (nb.hasPred)
            out = nb.pred;
        return nb.hasPred;
    }

    /** Smallest key strictly greater than @p k. */
    bool
    successor(const Key &k, Key &out) const
    {
        const Neighbors nb = neighbors(k);
        if (nb.hasSucc)
            out = nb.succ;
        return nb.hasSucc;
    }

    /** Predecessor, successor, and membership of @p k in one locate. */
    Neighbors
    neighbors(const Key &k) const
    {
        Neighbors nb;
        if (chunks.empty())
            return nb;
        const std::size_t ci = chunkFor(k);
        if (ci == chunks.size()) {
            nb.hasPred = true;
            nb.pred = chunks.back().keys.back();
            return nb;
        }
        fillNeighbors(ci, k, nb);
        return nb;
    }

    /**
     * Visit every key with lo < key < hi in ascending order;
     * fn(key) for sets, fn(key, mapped) for maps. The container must
     * not be mutated during the visit.
     */
    template <typename Fn>
    void
    forEachInRange(const Key &lo, const Key &hi, Fn &&fn) const
    {
        // First chunk that can hold a key > lo.
        std::size_t ci = firstChunkAbove(lo);
        for (bool leading = true; ci < chunks.size(); ++ci,
                                  leading = false) {
            const Chunk &c = chunks[ci];
            std::size_t pos = leading ? upperBound(c, lo) : c.start;
            for (; pos < c.keys.size(); ++pos) {
                if (!(c.keys[pos] < hi))
                    return;
                if constexpr (kHasMapped)
                    fn(c.keys[pos], c.vals[pos]);
                else
                    fn(c.keys[pos]);
            }
        }
    }

    /** Visit every element in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Chunk &c : chunks) {
            for (std::size_t pos = c.start; pos < c.keys.size();
                 ++pos) {
                if constexpr (kHasMapped)
                    fn(c.keys[pos], c.vals[pos]);
                else
                    fn(c.keys[pos]);
            }
        }
    }

    /**
     * Test hook: verify chunk sortedness, inter-chunk ordering,
     * parallel-array sizes, and the element count; panics on drift.
     */
    void
    checkInvariants() const
    {
        std::size_t seen = 0;
        PACACHE_ASSERT(maxes.size() == chunks.size(),
                       "OrderedSet maxes array drift");
        for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
            const Chunk &c = chunks[ci];
            PACACHE_ASSERT(c.start < c.keys.size(),
                           "empty OrderedSet chunk");
            PACACHE_ASSERT(c.start < kSplit,
                           "uncompacted OrderedSet dead prefix");
            PACACHE_ASSERT(maxes[ci] == c.keys.back(),
                           "OrderedSet stale chunk maximum");
            PACACHE_ASSERT(c.keys.size() - c.start <= kSplit,
                           "oversized OrderedSet chunk");
            if constexpr (kHasMapped)
                PACACHE_ASSERT(c.vals.size() == c.keys.size(),
                               "OrderedSet parallel-array drift");
            for (std::size_t i = c.start + 1; i < c.keys.size(); ++i)
                PACACHE_ASSERT(c.keys[i - 1] < c.keys[i],
                               "OrderedSet chunk not strictly sorted");
            if (ci > 0)
                PACACHE_ASSERT(chunks[ci - 1].keys.back() < c.front(),
                               "OrderedSet chunks out of order");
            seen += c.keys.size() - c.start;
        }
        PACACHE_ASSERT(seen == count, "OrderedSet count drift");
    }

  private:
    /** Chunk split threshold; 256 keys = 2 KiB of size_t per chunk. */
    static constexpr std::size_t kSplit = 256;

    struct Chunk
    {
        std::vector<Key> keys; //!< sorted, unique in [start, size())
        [[no_unique_address]] std::conditional_t<
            kHasMapped, std::vector<Value>, detail::NoMapped>
            vals;
        std::size_t start = 0; //!< dead-prefix length

        const Key &front() const { return keys[start]; }
    };

    /**
     * Branchless binary search: each step halves the range with a
     * conditional move instead of a 50/50-mispredicted compare, which
     * matters at kSplit-sized chunks probed with effectively random
     * keys. @return the first position in [first, first + n) whose
     * key fails @p before(key) — i.e. lower bound for before = (key
     * < k), upper bound for before = !(k < key).
     */
    template <typename Before>
    static const Key *
    search(const Key *first, std::size_t n, Before before)
    {
        while (n > 1) {
            const std::size_t half = n / 2;
            first += before(first[half - 1]) ? half : 0;
            n -= half;
        }
        return first + (n == 1 && before(*first) ? 1 : 0);
    }

    /** First live position with key >= k (absolute index). */
    static std::size_t
    lowerBound(const Chunk &c, const Key &k)
    {
        const Key *base = c.keys.data();
        return static_cast<std::size_t>(
            search(base + c.start, c.keys.size() - c.start,
                   [&](const Key &x) { return x < k; }) -
            base);
    }

    /** First live position with key > k (absolute index). */
    static std::size_t
    upperBound(const Chunk &c, const Key &k)
    {
        const Key *base = c.keys.data();
        return static_cast<std::size_t>(
            search(base + c.start, c.keys.size() - c.start,
                   [&](const Key &x) { return !(k < x); }) -
            base);
    }

    /** Drop the dead prefix; amortized O(1) per front erase. */
    static void
    compact(Chunk &c)
    {
        c.keys.erase(c.keys.begin(), c.keys.begin() + c.start);
        if constexpr (kHasMapped)
            c.vals.erase(c.vals.begin(), c.vals.begin() + c.start);
        c.start = 0;
    }

    /** Index of the first chunk with back() >= k (chunks.size() if none). */
    std::size_t
    chunkFor(const Key &k) const
    {
        // maxes mirrors each chunk's largest key contiguously, so the
        // search streams 1-2 cache lines instead of striding chunks.
        return static_cast<std::size_t>(
            search(maxes.data(), maxes.size(),
                   [&](const Key &x) { return x < k; }) -
            maxes.data());
    }

    /** Index of the first chunk with back() > k (chunks.size() if none). */
    std::size_t
    firstChunkAbove(const Key &k) const
    {
        return static_cast<std::size_t>(
            search(maxes.data(), maxes.size(),
                   [&](const Key &x) { return !(k < x); }) -
            maxes.data());
    }

    bool
    insertImpl(const Key &k, Value v)
    {
        if (chunks.empty()) {
            chunks.emplace_back();
            chunks.back().keys.push_back(k);
            if constexpr (kHasMapped)
                chunks.back().vals.push_back(std::move(v));
            maxes.push_back(k);
            count = 1;
            return true;
        }
        // Ascending-insert fast path: a key above every stored key
        // (bulk seeding in sorted order, monotone next-use indices)
        // appends to the last chunk with no locate and no shifting.
        if (maxes.back() < k) {
            const std::size_t last = chunks.size() - 1;
            Chunk &c = chunks[last];
            c.keys.push_back(k);
            if constexpr (kHasMapped)
                c.vals.push_back(std::move(v));
            maxes[last] = k;
            ++count;
            if (c.keys.size() - c.start > kSplit)
                splitChunk(last);
            return true;
        }
        const std::size_t ci = chunkFor(k);
        const std::size_t pos = lowerBound(chunks[ci], k);
        if (pos < chunks[ci].keys.size() && chunks[ci].keys[pos] == k)
            return false;
        insertAt(ci, pos, k, std::move(v));
        return true;
    }

    /**
     * Fill @p nb for probe @p k against chunk @p ci (which must
     * satisfy back() >= k, so the locate lands strictly inside).
     * @return the absolute position of k's lower bound in the chunk.
     */
    std::size_t
    fillNeighbors(std::size_t ci, const Key &k, Neighbors &nb) const
    {
        const Chunk &c = chunks[ci];
        const std::size_t pos = lowerBound(c, k);
        nb.present = c.keys[pos] == k;
        if (pos > c.start) {
            nb.hasPred = true;
            nb.pred = c.keys[pos - 1];
        } else if (ci > 0) {
            nb.hasPred = true;
            nb.pred = chunks[ci - 1].keys.back();
        }
        const std::size_t succ_pos = nb.present ? pos + 1 : pos;
        if (succ_pos < c.keys.size()) {
            nb.hasSucc = true;
            nb.succ = c.keys[succ_pos];
        } else if (ci + 1 < chunks.size()) {
            nb.hasSucc = true;
            nb.succ = chunks[ci + 1].front();
        }
        return pos;
    }

    /** Insert @p k at (ci, pos), an already-located insertion point. */
    void
    insertAt(std::size_t ci, std::size_t pos, const Key &k, Value v)
    {
        Chunk &c = chunks[ci];
        // Reuse a dead-prefix slot when the left side is shorter:
        // shift [start, pos) down one instead of the tail up one.
        if (c.start > 0 && pos - c.start < c.keys.size() - pos) {
            std::move(c.keys.begin() + c.start, c.keys.begin() + pos,
                      c.keys.begin() + c.start - 1);
            c.keys[pos - 1] = k;
            if constexpr (kHasMapped) {
                std::move(c.vals.begin() + c.start,
                          c.vals.begin() + pos,
                          c.vals.begin() + c.start - 1);
                c.vals[pos - 1] = std::move(v);
            }
            --c.start;
        } else {
            c.keys.insert(c.keys.begin() + pos, k);
            if constexpr (kHasMapped)
                c.vals.insert(c.vals.begin() + pos, std::move(v));
        }
        if (maxes[ci] < k)
            maxes[ci] = k;
        ++count;
        if (c.keys.size() - c.start > kSplit)
            splitChunk(ci);
    }

    /** Erase the element at (ci, pos), an already-located position. */
    void
    eraseAt(std::size_t ci, std::size_t pos)
    {
        Chunk &c = chunks[ci];
        --count;
        if (c.keys.size() - c.start == 1) {
            chunks.erase(chunks.begin() + ci);
            maxes.erase(maxes.begin() + ci);
            return;
        }
        // Shift whichever side of pos is shorter. Erasing the chunk
        // minimum (OPG's deterministic-miss pattern) shifts nothing:
        // it just grows the dead prefix.
        if (pos - c.start < c.keys.size() - pos - 1) {
            std::move_backward(c.keys.begin() + c.start,
                               c.keys.begin() + pos,
                               c.keys.begin() + pos + 1);
            if constexpr (kHasMapped)
                std::move_backward(c.vals.begin() + c.start,
                                   c.vals.begin() + pos,
                                   c.vals.begin() + pos + 1);
            ++c.start;
            if (c.start >= kSplit)
                compact(c);
        } else {
            c.keys.erase(c.keys.begin() + pos);
            if constexpr (kHasMapped)
                c.vals.erase(c.vals.begin() + pos);
            maxes[ci] = c.keys.back();
        }
    }

    void
    splitChunk(std::size_t ci)
    {
        compact(chunks[ci]);
        Chunk &c = chunks[ci];
        const std::size_t half = c.keys.size() / 2;
        Chunk right;
        right.keys.assign(c.keys.begin() + half, c.keys.end());
        c.keys.resize(half);
        if constexpr (kHasMapped) {
            right.vals.assign(
                std::make_move_iterator(c.vals.begin() + half),
                std::make_move_iterator(c.vals.end()));
            c.vals.resize(half);
        }
        maxes[ci] = c.keys.back();
        maxes.insert(maxes.begin() + ci + 1, right.keys.back());
        chunks.insert(chunks.begin() + ci + 1, std::move(right));
    }

    std::vector<Chunk> chunks;
    std::vector<Key> maxes; //!< maxes[i] == chunks[i].keys.back()
    std::size_t count = 0;
};

} // namespace pacache

#endif // PACACHE_UTIL_ORDERED_SET_HH
