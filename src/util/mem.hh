/**
 * @file
 * Process-memory probes: current and peak resident set size read
 * from /proc/self/status (VmRSS / VmHWM). Scale work (out-of-core
 * replay, streaming tools) reports these so "bounded RSS" is a
 * measured claim, not an assumption.
 */

#ifndef PACACHE_UTIL_MEM_HH
#define PACACHE_UTIL_MEM_HH

#include <cstdint>

namespace pacache
{

/**
 * Peak resident set size (VmHWM) of this process in bytes, or 0
 * when /proc/self/status is unavailable (non-Linux hosts).
 */
uint64_t peakRssBytes();

/** Current resident set size (VmRSS) in bytes, or 0. */
uint64_t currentRssBytes();

} // namespace pacache

#endif // PACACHE_UTIL_MEM_HH
