/**
 * @file
 * FlatMap — an open-addressing hash map for the simulator's hot
 * paths (cache residency sets, replacement-policy indexes, pending-
 * event sets).
 *
 * Design, chosen for the access pattern of a cache simulation (one
 * lookup + one pointer splice per simulated request, hundreds of
 * millions of times per sweep):
 *
 *  - one contiguous slot array, power-of-two sized, linear probing:
 *    a lookup touches one cache line in the common case, never
 *    chases node pointers and never allocates per element;
 *  - splitmix64 finalizer over the raw key bits, so dense block
 *    numbers (the typical trace) spread uniformly regardless of the
 *    table size;
 *  - erase marks a tombstone; tombstones are reused by inserts and
 *    squashed wholesale when the occupied+tombstone load crosses the
 *    rehash threshold (7/8), which keeps probe chains short under the
 *    steady insert/erase churn of a full cache.
 *
 * Requirements: Key and T default-constructible; Key equality-
 * comparable. The default hasher accepts any integral key or any key
 * exposing `uint64_t packed() const` (BlockId).
 *
 * Not provided (by design, nothing in the hot loop needs them):
 * iteration in a meaningful order, references that survive rehash,
 * copy-on-write. Pointers returned by find() are invalidated by any
 * insert.
 */

#ifndef PACACHE_UTIL_FLAT_MAP_HH
#define PACACHE_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace pacache
{

/** splitmix64 finalizer: cheap, statistically solid 64-bit mixing. */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Default FlatMap hasher: integral keys hash their value, struct keys
 * hash their packed() form (BlockId).
 */
template <typename Key>
struct FlatKeyHash
{
    uint64_t
    operator()(const Key &key) const
    {
        if constexpr (std::is_integral_v<Key> || std::is_enum_v<Key>)
            return splitmix64(static_cast<uint64_t>(key));
        else
            return splitmix64(key.packed());
    }
};

/** Open-addressing hash map; see the file comment for the contract. */
template <typename Key, typename T, typename Hash = FlatKeyHash<Key>>
class FlatMap
{
    enum : uint8_t
    {
        kEmpty = 0,
        kFull = 1,
        kTomb = 2
    };

    struct Slot
    {
        Key key{};
        T value{};
        uint8_t state = kEmpty;
    };

  public:
    FlatMap() = default;

    std::size_t size() const { return occupied; }
    bool empty() const { return occupied == 0; }

    /** Drop all elements, keeping the current table size. */
    void
    clear()
    {
        for (Slot &s : slots)
            s.state = kEmpty;
        occupied = 0;
        tombstones = 0;
    }

    /** Pre-size the table for @p n elements (no-op if large enough). */
    void
    reserve(std::size_t n)
    {
        std::size_t want = kMinCapacity;
        // Grow until n fits under the load limit.
        while (want * 7 < n * 8)
            want <<= 1;
        if (want > slots.size())
            rehash(want);
    }

    /**
     * Rehash down after heavy erase churn. Tombstone squashing keeps
     * probe chains short but never returns slot memory; shrink()
     * does, rebuilding at the smallest power-of-two capacity that
     * holds the live elements under the 7/8 load limit. Only acts
     * when the table is at least 4x oversized, so calling it
     * periodically (window transitions) cannot thrash. Invalidates
     * pointers like any rehash.
     */
    void
    shrink()
    {
        if (slots.empty())
            return;
        std::size_t want = kMinCapacity;
        while (want * 7 < occupied * 8)
            want <<= 1;
        if (want * 4 <= slots.size())
            rehash(want);
    }

    /** @return pointer to the mapped value, or null if absent. */
    T *
    find(const Key &key)
    {
        Slot *s = findSlot(key);
        return s ? &s->value : nullptr;
    }

    const T *
    find(const Key &key) const
    {
        const Slot *s = const_cast<FlatMap *>(this)->findSlot(key);
        return s ? &s->value : nullptr;
    }

    bool contains(const Key &key) const { return find(key) != nullptr; }

    /**
     * Insert @p value under @p key if absent.
     * @return {pointer to the (existing or new) mapped value,
     *          true if newly inserted}
     */
    std::pair<T *, bool>
    emplace(const Key &key, T value)
    {
        maybeGrow();
        const std::size_t mask = slots.size() - 1;
        std::size_t i = hasher(key) & mask;
        std::size_t tomb = kNpos;
        while (true) {
            Slot &s = slots[i];
            if (s.state == kEmpty) {
                Slot &dst = tomb == kNpos ? s : slots[tomb];
                if (tomb != kNpos)
                    --tombstones;
                dst.key = key;
                dst.value = std::move(value);
                dst.state = kFull;
                ++occupied;
                return {&dst.value, true};
            }
            if (s.state == kTomb) {
                if (tomb == kNpos)
                    tomb = i;
            } else if (s.key == key) {
                return {&s.value, false};
            }
            i = (i + 1) & mask;
        }
    }

    /** find-or-default-insert, like std::unordered_map::operator[]. */
    T &operator[](const Key &key) { return *emplace(key, T{}).first; }

    /** @return true if the key was present and is now removed. */
    bool
    erase(const Key &key)
    {
        Slot *s = findSlot(key);
        if (!s)
            return false;
        s->state = kTomb;
        --occupied;
        ++tombstones;
        return true;
    }

    /**
     * Remove @p key and move its value into @p out in one probe
     * (where find-then-erase would pay the hash walk twice).
     * @return true if the key was present.
     */
    bool
    take(const Key &key, T &out)
    {
        Slot *s = findSlot(key);
        if (!s)
            return false;
        out = std::move(s->value);
        s->state = kTomb;
        --occupied;
        ++tombstones;
        return true;
    }

    /** Occupied-slot visitation (testing/serialization; any order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots) {
            if (s.state == kFull)
                fn(s.key, s.value);
        }
    }

    /** Table size in slots (testing: rehash/tombstone behavior). */
    std::size_t capacity() const { return slots.size(); }

  private:
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    Slot *
    findSlot(const Key &key)
    {
        if (slots.empty())
            return nullptr;
        const std::size_t mask = slots.size() - 1;
        std::size_t i = hasher(key) & mask;
        while (true) {
            Slot &s = slots[i];
            if (s.state == kEmpty)
                return nullptr;
            if (s.state == kFull && s.key == key)
                return &s;
            i = (i + 1) & mask;
        }
    }

    void
    maybeGrow()
    {
        if (slots.empty()) {
            slots.resize(kMinCapacity);
            return;
        }
        // Rehash at 7/8 combined load. Growing only when live
        // elements dominate; otherwise rebuild at the same size to
        // squash tombstones.
        if ((occupied + tombstones + 1) * 8 < slots.size() * 7)
            return;
        const std::size_t next = occupied * 2 >= slots.size()
                                     ? slots.size() * 2
                                     : slots.size();
        rehash(next);
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(new_capacity, Slot{});
        occupied = 0;
        tombstones = 0;
        const std::size_t mask = new_capacity - 1;
        for (Slot &s : old) {
            if (s.state != kFull)
                continue;
            std::size_t i = hasher(s.key) & mask;
            while (slots[i].state == kFull)
                i = (i + 1) & mask;
            slots[i].key = s.key;
            slots[i].value = std::move(s.value);
            slots[i].state = kFull;
            ++occupied;
        }
    }

    std::vector<Slot> slots;
    std::size_t occupied = 0;
    std::size_t tombstones = 0;
    [[no_unique_address]] Hash hasher{};
};

} // namespace pacache

#endif // PACACHE_UTIL_FLAT_MAP_HH
