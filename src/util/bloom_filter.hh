/**
 * @file
 * Bloom filter used by the PA classifier to detect cold misses
 * (first-ever references to a block), per Section 4 of the paper.
 *
 * A Bloom filter never yields a false negative: if test() returns false
 * the element was definitely never inserted — i.e. the access is a
 * genuine cold miss. False positives (misclassifying a cold miss as
 * warm) occur with a small, configurable probability.
 */

#ifndef PACACHE_UTIL_BLOOM_FILTER_HH
#define PACACHE_UTIL_BLOOM_FILTER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacache
{

/** Bloom filter over 64-bit keys with k derived hash functions. */
class BloomFilter
{
  public:
    /**
     * @param num_bits    size of the bit vector (rounded up to 64)
     * @param num_hashes  number of hash probes per key (k >= 1)
     */
    explicit BloomFilter(std::size_t num_bits = 1u << 20,
                         std::size_t num_hashes = 4);

    /** Insert a key. */
    void insert(uint64_t key);

    /** @return true if the key may have been inserted before. */
    bool test(uint64_t key) const;

    /**
     * Combined test-and-insert.
     * @return true iff the key was definitely NOT present before
     *         (i.e. this access is a cold miss).
     */
    bool testAndInsert(uint64_t key);

    /** Clear all bits. */
    void clear();

    /** Number of bits in the filter. */
    std::size_t sizeBits() const { return bits.size() * 64; }

    /** Number of hash probes per key. */
    std::size_t hashCount() const { return numHashes; }

    /** Number of keys inserted since construction/clear. */
    std::size_t insertions() const { return numInsertions; }

    /**
     * Expected false-positive probability for the current fill,
     * (1 - e^{-kn/m})^k.
     */
    double expectedFalsePositiveRate() const;

  private:
    /** Derive the i-th probe position for a key. */
    std::size_t probe(uint64_t key, std::size_t i) const;

    std::vector<uint64_t> bits;
    std::size_t numHashes;
    std::size_t numInsertions = 0;
};

} // namespace pacache

#endif // PACACHE_UTIL_BLOOM_FILTER_HH
