#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace pacache
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    body.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : body)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };

    if (!head.empty()) {
        emit(head);
        std::size_t rule = 0;
        for (std::size_t w : widths)
            rule += w + 2;
        os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
    }
    for (const auto &r : body)
        emit(r);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace pacache
