#include "util/seen_filter.hh"

#include <cstring>

#include "util/logging.hh"

namespace pacache
{

SparseSeenSet::SparseSeenSet(std::size_t budget_bytes,
                             unsigned sketch_log2)
    : pool(budget_bytes), sketchLog2(sketch_log2)
{
    PACACHE_ASSERT(sketch_log2 >= 4 && sketch_log2 < 40,
                   "unreasonable sketch size");
}

std::uint32_t
SparseSeenSet::allocSlab()
{
    if (!freeSlabs.empty()) {
        const std::uint32_t sb = freeSlabs.back();
        freeSlabs.pop_back();
        return sb;
    }
    const std::uint32_t sb = static_cast<std::uint32_t>(slabs.size());
    slabs.emplace_back();
    return sb;
}

void
SparseSeenSet::sketchAdd(std::uint64_t key)
{
    if (sketch.empty()) {
        sketch.assign(std::size_t(1) << (sketchLog2 - 1), 0);
        sketchMask = (std::uint64_t(1) << sketchLog2) - 1;
    }
    const std::uint64_t h1 = splitmix64(key) & sketchMask;
    const std::uint64_t h2 =
        splitmix64(key ^ 0x9e3779b97f4a7c15ULL) & sketchMask;
    for (const std::uint64_t h : {h1, h2}) {
        std::uint8_t &byte = sketch[h >> 1];
        const unsigned shift = (h & 1) * 4;
        const std::uint8_t nib = (byte >> shift) & 0xF;
        if (nib < 0xF)
            byte = static_cast<std::uint8_t>(
                (byte & ~(0xF << shift)) | ((nib + 1) << shift));
    }
}

bool
SparseSeenSet::sketchMaybe(std::uint64_t key) const
{
    if (sketch.empty())
        return false;
    const std::uint64_t h1 = splitmix64(key) & sketchMask;
    const std::uint64_t h2 =
        splitmix64(key ^ 0x9e3779b97f4a7c15ULL) & sketchMask;
    const std::uint8_t n1 =
        (sketch[h1 >> 1] >> ((h1 & 1) * 4)) & 0xF;
    const std::uint8_t n2 =
        (sketch[h2 >> 1] >> ((h2 & 1) * 4)) & 0xF;
    return n1 > 0 && n2 > 0;
}

void
SparseSeenSet::mergeOverlay(Meta &m)
{
    PACACHE_ASSERT(m.partial && m.slab != kNone32 &&
                       m.slot != SpillPool::kNoSlot,
                   "overlay merge on a non-partial page");
    PageWords old;
    pool.readSlot(m.slot, old.data(), kPageIoBytes);
    PageWords &w = slabs[m.slab];
    for (std::size_t i = 0; i < kWords; ++i)
        w[i] |= old[i];
    m.partial = false;
    m.dirty = true;
    ++merges;
}

bool
SparseSeenSet::testAndSet(std::uint64_t key)
{
    const std::uint64_t pageNo = key >> 12;
    const std::size_t bit = static_cast<std::size_t>(key & 4095);
    const std::size_t word = bit >> 6;
    const std::uint64_t mask = std::uint64_t{1} << (bit & 63);

    const auto [idp, isNew] = index.emplace(
        pageNo, static_cast<std::uint32_t>(metas.size()));
    if (isNew) {
        metas.emplace_back();
        Meta &m = metas.back();
        m.slab = allocSlab();
        slabs[m.slab].fill(0);
        slabs[m.slab][word] |= mask;
        m.dirty = true;
        sketchAdd(key);
        ++inserted;
        // Pinned through the add so the enforcement sweep cannot
        // reclaim the page between registration and this return.
        m.token = pool.add(this, static_cast<std::uint32_t>(
                                     metas.size() - 1),
                           pageCost(), true);
        pool.unpin(m.token);
        return true;
    }

    const std::uint32_t id = *idp;
    Meta &m = metas[id];
    if (m.slab != kNone32) {
        pool.touch(m.token);
        pool.pin(m.token);
        PageWords &w = slabs[m.slab];
        bool seen = (w[word] & mask) != 0;
        if (!seen && m.partial && sketchMaybe(key)) {
            mergeOverlay(m);
            seen = (w[word] & mask) != 0;
        }
        if (!seen) {
            w[word] |= mask;
            m.dirty = true;
            sketchAdd(key);
            ++inserted;
        }
        pool.unpin(m.token);
        return !seen;
    }

    // Page is spilled. The sketch has no false negatives, so a
    // "definitely new" verdict inserts into a fresh overlay with no
    // read; only a "maybe" pays the pread.
    if (!sketchMaybe(key)) {
        m.slab = allocSlab();
        slabs[m.slab].fill(0);
        slabs[m.slab][word] |= mask;
        m.partial = true;
        m.dirty = true;
        sketchAdd(key);
        ++inserted;
        ++blind;
        m.token = pool.add(this, id, pageCost(), true);
        pool.unpin(m.token);
        return true;
    }

    m.slab = allocSlab();
    pool.readSlot(m.slot, slabs[m.slab].data(), kPageIoBytes);
    m.partial = false;
    m.dirty = false;
    ++faults;
    m.token = pool.add(this, id, pageCost(), true);
    PageWords &w = slabs[m.slab];
    const bool seen = (w[word] & mask) != 0;
    if (!seen) {
        w[word] |= mask;
        m.dirty = true;
        sketchAdd(key);
        ++inserted;
    }
    pool.unpin(m.token);
    return !seen;
}

void
SparseSeenSet::spillPage(std::uint32_t page)
{
    Meta &m = metas[page];
    PACACHE_ASSERT(m.slab != kNone32, "spill of non-resident page");
    if (m.partial)
        mergeOverlay(m);
    if (m.dirty || m.slot == SpillPool::kNoSlot) {
        if (m.slot == SpillPool::kNoSlot)
            m.slot = pool.allocSlot(kPageIoBytes);
        pool.writeSlot(m.slot, slabs[m.slab].data(), kPageIoBytes);
        m.dirty = false;
    }
    freeSlabs.push_back(m.slab);
    m.slab = kNone32;
    m.token = SpillPool::kNoToken;
}

void
SparseSeenSet::checkInvariants() const
{
    pool.checkInvariants();
    std::size_t resident = 0;
    for (const Meta &m : metas) {
        if (m.slab == kNone32)
            PACACHE_ASSERT(m.slot != SpillPool::kNoSlot,
                           "spilled page without a slot");
        else
            ++resident;
        if (m.partial)
            PACACHE_ASSERT(m.slab != kNone32 &&
                               m.slot != SpillPool::kNoSlot,
                           "partial page must be a resident overlay");
    }
    PACACHE_ASSERT(resident == pool.residentPages(),
                   "SparseSeenSet residency drift");
}

} // namespace pacache
