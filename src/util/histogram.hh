/**
 * @file
 * Epoch-based interval-length histogram (paper Section 4, Figure 5).
 *
 * The PA classifier records the length of every idle interval between
 * consecutive accesses to a disk. The histogram approximates the
 * cumulative distribution function F(x) = P(interval < x); the
 * classifier then evaluates the inverse CDF at a target cumulative
 * probability p to characterize how long the disk's idle periods are.
 *
 * Bins are geometric by default (interval lengths span several orders
 * of magnitude, from milliseconds to minutes).
 */

#ifndef PACACHE_UTIL_HISTOGRAM_HH
#define PACACHE_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacache
{

/** Histogram over positive real values with explicit bin edges. */
class IntervalHistogram
{
  public:
    /**
     * Build a histogram with geometric bin edges.
     *
     * @param min_edge  first finite edge (values below land in bin 0)
     * @param max_edge  last finite edge (values above land in the
     *                  overflow bin)
     * @param bins_per_decade  resolution
     */
    static IntervalHistogram geometric(double min_edge, double max_edge,
                                       std::size_t bins_per_decade = 8);

    /** Build a histogram with caller-supplied ascending edges. */
    explicit IntervalHistogram(std::vector<double> edges);

    /** Record one interval length. */
    void record(double value);

    /** Remove all samples (start of a new epoch). */
    void reset();

    /**
     * Add another histogram's samples into this one. Both must share
     * identical bin edges (fatal otherwise). Bucket counts and the
     * sample count merge exactly; because addition of the per-bin
     * integers is commutative and associative, merging per-shard
     * histograms yields the same buckets as recording the interleaved
     * stream into one histogram, regardless of shard count or merge
     * order.
     */
    void merge(const IntervalHistogram &other);

    /** Total number of recorded samples. */
    uint64_t sampleCount() const { return total; }

    /** Mean of the recorded samples. */
    double mean() const;

    /**
     * Empirical CDF: fraction of samples strictly below x
     * (approximated at bin granularity, linearly interpolated).
     * Returns 0 when the histogram is empty.
     */
    double cdf(double x) const;

    /**
     * Inverse CDF: the smallest x with F(x) >= p, linearly
     * interpolated inside the bin. Returns 0 when empty.
     * For p beyond the last finite edge, returns the last edge.
     */
    double quantile(double p) const;

    /** Bin edges (ascending). */
    const std::vector<double> &edges() const { return binEdges; }

    /** Per-bin counts; counts.size() == edges().size() + 1. */
    const std::vector<uint64_t> &counts() const { return binCounts; }

  private:
    std::vector<double> binEdges;
    std::vector<uint64_t> binCounts;
    uint64_t total = 0;
    double sum = 0.0;
};

} // namespace pacache

#endif // PACACHE_UTIL_HISTOGRAM_HH
