/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a pacache bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            invalid arguments); exits with an error code.
 * warn()   — something works well enough but deserves attention.
 * inform() — normal operating status.
 */

#ifndef PACACHE_UTIL_LOGGING_HH
#define PACACHE_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace pacache
{

namespace detail
{

/** Stream one or more values into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Silence warn()/inform() output (used by tests). */
void setQuietLogging(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool quietLogging();

} // namespace pacache

#define PACACHE_PANIC(...) \
    ::pacache::detail::panicImpl(__FILE__, __LINE__, \
                                 ::pacache::detail::concat(__VA_ARGS__))

#define PACACHE_FATAL(...) \
    ::pacache::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::pacache::detail::concat(__VA_ARGS__))

#define PACACHE_WARN(...) \
    ::pacache::detail::warnImpl(::pacache::detail::concat(__VA_ARGS__))

#define PACACHE_INFORM(...) \
    ::pacache::detail::informImpl(::pacache::detail::concat(__VA_ARGS__))

/** Panic unless the given invariant holds. */
#define PACACHE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            PACACHE_PANIC("assertion '", #cond, "' failed ", __VA_ARGS__); \
        } \
    } while (0)

#endif // PACACHE_UTIL_LOGGING_HH
