#include "util/spill_pool.hh"

#include <fcntl.h>
#include <stdlib.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/logging.hh"

namespace pacache
{

namespace
{

/** An unlinked temp file: space reclaimed on close, never listed. */
int
makeUnlinkedSpillFile()
{
    const char *env = ::getenv("TMPDIR");
    std::string templ = (env && *env ? std::string(env)
                                     : std::string("/tmp")) +
                        "/pacache-spill-XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0) {
        PACACHE_FATAL("cannot create spill temp file '", buf.data(),
                      "': ", std::strerror(errno));
    }
    ::unlink(buf.data());
    return fd;
}

} // namespace

SpillPool::SpillPool(std::size_t budget_bytes) : budget(budget_bytes)
{
}

SpillPool::~SpillPool()
{
    if (fd >= 0)
        ::close(fd);
}

std::uint32_t
SpillPool::add(SpillClient *owner, std::uint32_t page,
               std::size_t bytes, bool pinned)
{
    std::uint32_t token;
    if (!freeNodes.empty()) {
        token = freeNodes.back();
        freeNodes.pop_back();
    } else {
        token = static_cast<std::uint32_t>(nodes.size());
        nodes.emplace_back();
    }
    Node &n = nodes[token];
    n.owner = owner;
    n.page = page;
    n.bytes = static_cast<std::uint32_t>(bytes);
    n.pins = pinned ? 1 : 0;
    n.live = true;
    n.referenced = false;
    linkFront(token);
    resident += bytes;
    ++liveNodes;
    enforce();
    return token;
}

void
SpillPool::enforce()
{
    // Second-chance sweep from the cold end, skipping pinned pages.
    // A page touched since the last sweep spends its reference bit
    // and moves to the front instead of spilling. Each pass stops at
    // the node that was the head when it started: demoted pages land
    // in front of that boundary, so a pass visits every page at most
    // once and a just-demoted page cannot be evicted by the same
    // pass. spillPage() may allocate/write slots but never touches
    // the recency list, and no touch() can run mid-sweep, so bits
    // only ever clear here; demote work is bounded by prior touches.
    // The outer loop covers a pass that ends having only demoted.
    while (resident > budget) {
        bool progressed = false;
        std::uint32_t cur = tail;
        const std::uint32_t stopAt = head;
        while (resident > budget && cur != kNoToken) {
            Node &n = nodes[cur];
            const std::uint32_t prev =
                cur == stopAt ? kNoToken : n.prev;
            if (n.pins == 0) {
                if (n.referenced) {
                    n.referenced = false;
                    unlink(cur);
                    linkFront(cur);
                } else {
                    SpillClient *owner = n.owner;
                    const std::uint32_t page = n.page;
                    remove(cur);
                    ++evicted;
                    owner->spillPage(page);
                }
                progressed = true;
            }
            cur = prev;
        }
        if (!progressed)
            break; // everything left is pinned
    }
}

void
SpillPool::ensureFile()
{
    if (fd < 0)
        fd = makeUnlinkedSpillFile();
}

std::uint64_t
SpillPool::allocSlot(std::size_t bytes)
{
    ensureFile();
    for (auto &[size, list] : slotFree) {
        if (size != bytes)
            continue;
        if (list.empty())
            break;
        const std::uint64_t off = list.back();
        list.pop_back();
        return off;
    }
    const std::uint64_t off = fileEnd;
    fileEnd += bytes;
    return off;
}

void
SpillPool::freeSlot(std::uint64_t offset, std::size_t bytes)
{
    for (auto &[size, list] : slotFree) {
        if (size == bytes) {
            list.push_back(offset);
            return;
        }
    }
    slotFree.emplace_back(bytes,
                          std::vector<std::uint64_t>{offset});
}

void
SpillPool::writeSlot(std::uint64_t offset, const void *data,
                     std::size_t bytes)
{
    PACACHE_ASSERT(fd >= 0, "SpillPool write before allocSlot");
    const char *p = static_cast<const char *>(data);
    while (bytes > 0) {
        const ssize_t w =
            ::pwrite(fd, p, bytes, static_cast<off_t>(offset));
        if (w < 0) {
            if (errno == EINTR)
                continue;
            PACACHE_FATAL("spill write failed: ",
                          std::strerror(errno));
        }
        p += w;
        bytes -= static_cast<std::size_t>(w);
        offset += static_cast<std::uint64_t>(w);
    }
}

void
SpillPool::readSlot(std::uint64_t offset, void *data,
                    std::size_t bytes) const
{
    PACACHE_ASSERT(fd >= 0, "SpillPool read before any write");
    char *p = static_cast<char *>(data);
    while (bytes > 0) {
        const ssize_t r =
            ::pread(fd, p, bytes, static_cast<off_t>(offset));
        if (r <= 0) {
            if (r < 0 && errno == EINTR)
                continue;
            PACACHE_FATAL("spill read failed: ",
                          r < 0 ? std::strerror(errno)
                                : "unexpected end of file");
        }
        p += r;
        bytes -= static_cast<std::size_t>(r);
        offset += static_cast<std::uint64_t>(r);
    }
}

void
SpillPool::checkInvariants() const
{
    std::size_t bytes = 0;
    std::size_t live = 0;
    std::uint32_t prev = kNoToken;
    for (std::uint32_t cur = head; cur != kNoToken;
         cur = nodes[cur].next) {
        const Node &n = nodes[cur];
        PACACHE_ASSERT(n.live, "dead node on SpillPool LRU");
        PACACHE_ASSERT(n.prev == prev, "SpillPool LRU link drift");
        bytes += n.bytes;
        ++live;
        prev = cur;
    }
    PACACHE_ASSERT(prev == tail, "SpillPool tail drift");
    PACACHE_ASSERT(bytes == resident, "SpillPool byte accounting");
    PACACHE_ASSERT(live == liveNodes, "SpillPool node accounting");
}

} // namespace pacache
