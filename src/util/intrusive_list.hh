/**
 * @file
 * ArenaList — a doubly-linked list whose nodes live in a chunked
 * arena, built for replacement-policy recency stacks.
 *
 * The policies (LRU, FIFO, CLOCK, the PA stacks) perform exactly
 * three operations per simulated request: look a node up by key (the
 * job of FlatMap), splice it to one end, or unlink it. std::list
 * pays a heap allocation per insert and a free per erase; at cache
 * capacity the policies insert and erase on every miss, forever.
 * ArenaList instead:
 *
 *  - allocates nodes from a std::deque arena (chunked, so node
 *    addresses are stable for the lifetime of the list);
 *  - keeps unlinked nodes on an internal free list, so a policy
 *    running at steady state performs **zero** allocations no matter
 *    how long the trace is — the arena high-water mark is the cache
 *    capacity;
 *  - exposes nodes directly (Node*), so an index map can store the
 *    node pointer and splice/unlink without any iterator machinery.
 *
 * Not thread-safe; nodes belong to exactly one list (no cross-list
 * splicing) — everything the replacement policies need and nothing
 * more.
 */

#ifndef PACACHE_UTIL_INTRUSIVE_LIST_HH
#define PACACHE_UTIL_INTRUSIVE_LIST_HH

#include <cstddef>
#include <deque>
#include <utility>

namespace pacache
{

/** Arena-backed doubly-linked list; see the file comment. */
template <typename T>
class ArenaList
{
  public:
    struct Node
    {
        T value{};
        Node *prev = nullptr;
        Node *next = nullptr;
    };

    ArenaList() = default;
    ArenaList(const ArenaList &) = delete;
    ArenaList &operator=(const ArenaList &) = delete;

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    Node *front() { return head; }
    Node *back() { return tail; }
    const Node *front() const { return head; }
    const Node *back() const { return tail; }

    /** Next node, or null at the end. */
    static Node *next(Node *n) { return n->next; }

    Node *
    pushFront(T value)
    {
        Node *n = acquire(std::move(value));
        n->next = head;
        if (head)
            head->prev = n;
        head = n;
        if (!tail)
            tail = n;
        ++count;
        return n;
    }

    Node *
    pushBack(T value)
    {
        Node *n = acquire(std::move(value));
        n->prev = tail;
        if (tail)
            tail->next = n;
        tail = n;
        if (!head)
            head = n;
        ++count;
        return n;
    }

    /**
     * Insert a new node just before @p pos (null: append at the
     * back), matching std::list::insert semantics.
     */
    Node *
    insertBefore(Node *pos, T value)
    {
        if (!pos)
            return pushBack(std::move(value));
        if (!pos->prev)
            return pushFront(std::move(value));
        Node *n = acquire(std::move(value));
        n->prev = pos->prev;
        n->next = pos;
        pos->prev->next = n;
        pos->prev = n;
        ++count;
        return n;
    }

    /** Splice an already-linked node to the front (MRU position). */
    void
    moveToFront(Node *n)
    {
        if (n == head)
            return;
        detach(n);
        n->prev = nullptr;
        n->next = head;
        head->prev = n; // head != n, so the list is non-empty
        head = n;
    }

    /**
     * Unlink @p n and recycle it onto the free list. The pointer is
     * dead after this call (a later insert may resurrect the node).
     */
    void
    unlink(Node *n)
    {
        detach(n);
        n->next = freeList;
        n->prev = nullptr;
        freeList = n;
        --count;
    }

    /** Unlink the back node and return its value. List must be
     *  non-empty. */
    T
    popBack()
    {
        Node *n = tail;
        T value = std::move(n->value);
        unlink(n);
        return value;
    }

    /** Unlink the front node and return its value. List must be
     *  non-empty. */
    T
    popFront()
    {
        Node *n = head;
        T value = std::move(n->value);
        unlink(n);
        return value;
    }

    /** Drop every element (arena storage is retained for reuse). */
    void
    clear()
    {
        while (head) {
            Node *n = head;
            head = n->next;
            n->next = freeList;
            n->prev = nullptr;
            freeList = n;
        }
        tail = nullptr;
        count = 0;
    }

    /** Nodes ever materialized (testing: steady-state reuse). */
    std::size_t arenaSize() const { return arena.size(); }

  private:
    Node *
    acquire(T value)
    {
        Node *n;
        if (freeList) {
            n = freeList;
            freeList = n->next;
        } else {
            n = &arena.emplace_back();
        }
        n->value = std::move(value);
        n->prev = nullptr;
        n->next = nullptr;
        return n;
    }

    /** Remove @p n from the chain without touching the free list. */
    void
    detach(Node *n)
    {
        if (n->prev)
            n->prev->next = n->next;
        else
            head = n->next;
        if (n->next)
            n->next->prev = n->prev;
        else
            tail = n->prev;
    }

    std::deque<Node> arena;
    Node *freeList = nullptr;
    Node *head = nullptr;
    Node *tail = nullptr;
    std::size_t count = 0;
};

} // namespace pacache

#endif // PACACHE_UTIL_INTRUSIVE_LIST_HH
