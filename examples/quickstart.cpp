/**
 * @file
 * Quickstart: generate a small synthetic workload, run it through
 * two complete simulated storage systems (LRU and PA-LRU caches over
 * multi-speed disks with threshold-based power management), and
 * compare energy and response time.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    // 1. A workload: the OLTP-like trace (21 disks, 22% writes),
    //    scaled to 20 minutes for a quick run.
    OltpParams workload;
    workload.duration = 1200;
    const Trace trace = makeOltpTrace(workload);
    std::cout << "Generated " << trace.size() << " requests over "
              << trace.numDisks() << " disks.\n\n";

    // 2. Run the same trace under two replacement policies. The
    //    runner assembles everything: IBM Ultrastar 36Z15 power model
    //    with 4 NAP modes, 2-competitive Practical DPM, service
    //    model, cache, and (for PA-LRU) the epoch classifier.
    TextTable table;
    table.header({"Policy", "Energy (J)", "Hit ratio",
                  "Mean response (ms)", "Spin-ups"});
    for (PolicyKind kind : {PolicyKind::LRU, PolicyKind::PALRU}) {
        ExperimentConfig cfg;
        cfg.policy = kind;
        cfg.dpm = DpmChoice::Practical;
        cfg.cacheBlocks = 1024; // 4 MiB of 4 KiB blocks
        cfg.pa.epochLength = 300;
        const ExperimentResult result = runExperiment(trace, cfg);

        table.row({result.policyName, fmt(result.totalEnergy, 0),
                   fmt(result.cache.hitRatio(), 3),
                   fmt(result.responses.mean() * 1000.0, 2),
                   std::to_string(result.energy.spinUps)});
    }
    table.print(std::cout);

    std::cout << "\nPA-LRU keeps blocks of 'priority' disks (low "
                 "cold-miss rate, long idle intervals)\ncached longer, "
                 "so those disks sleep instead of bouncing in and out "
                 "of low-power modes.\n";
    return 0;
}
