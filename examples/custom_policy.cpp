/**
 * @file
 * Extending the framework: implement a custom replacement policy
 * against the ReplacementPolicy interface, plug it into a Cache, and
 * race it against the built-ins on a full simulated storage system.
 *
 * The example policy is "LRU-2disks": a toy power-aware heuristic
 * that statically pins the blocks of the two least-busy disks (a
 * hard-coded version of what PA-LRU learns on-line).
 */

#include <iostream>
#include <memory>

#include "cache/lru.hh"
#include "core/storage_system.hh"
#include "disk/dpm.hh"
#include "trace/stats.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

/** A user-defined policy: protect a fixed set of disks. */
class PinnedDisksLru : public ReplacementPolicy
{
  public:
    explicit PinnedDisksLru(std::vector<bool> pinned)
        : pinnedDisk(std::move(pinned)) {}

    const char *name() const override { return "PinnedDisksLRU"; }

    void
    onAccess(const BlockId &block, Time, std::size_t, bool hit) override
    {
        if (hit) {
            regular.remove(block);
            pinned.remove(block);
        }
        if (isPinned(block))
            pinned.touch(block);
        else
            regular.touch(block);
    }

    void
    onRemove(const BlockId &block) override
    {
        if (!regular.remove(block))
            pinned.remove(block);
    }

    BlockId
    evict(Time, std::size_t) override
    {
        // Victims come from the unpinned stack while it has anything.
        return regular.empty() ? pinned.popLru() : regular.popLru();
    }

  private:
    bool
    isPinned(const BlockId &block) const
    {
        return block.disk < pinnedDisk.size() && pinnedDisk[block.disk];
    }

    std::vector<bool> pinnedDisk;
    LruStack regular, pinned;
};

double
runWith(const Trace &trace, ReplacementPolicy &policy, double &resp_ms)
{
    const PowerModel pm;
    const ServiceModel sm(pm.spec());
    PracticalDpm dpm(pm);
    EventQueue eq;
    Cache cache(1024, policy);
    DiskArray disks(trace.numDisks(), eq, pm, sm, dpm);
    StorageSystem system(trace, eq, cache, disks, StorageConfig{});
    system.run();
    resp_ms = system.responses().mean() * 1000.0;
    return system.totalEnergy();
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 1200;
    const Trace trace = makeOltpTrace(params);

    // Pick the two disks with the fewest requests to pin.
    const TraceStats stats = characterize(trace);
    std::vector<std::pair<uint64_t, DiskId>> by_load;
    for (uint32_t d = 0; d < stats.disks; ++d)
        by_load.emplace_back(stats.perDiskRequests[d], d);
    std::sort(by_load.begin(), by_load.end());
    std::vector<bool> pin(stats.disks, false);
    pin[by_load[0].second] = pin[by_load[1].second] = true;
    std::cout << "Pinning disks " << by_load[0].second << " and "
              << by_load[1].second << " (least busy).\n\n";

    TextTable t;
    t.header({"Policy", "Energy (J)", "Mean resp (ms)"});

    double resp = 0;
    LruPolicy lru;
    const double lru_energy = runWith(trace, lru, resp);
    t.row({lru.name(), fmt(lru_energy, 0), fmt(resp, 2)});

    PinnedDisksLru custom(pin);
    const double custom_energy = runWith(trace, custom, resp);
    t.row({custom.name(), fmt(custom_energy, 0), fmt(resp, 2)});

    t.print(std::cout);

    std::cout << "\nImplementing ReplacementPolicy takes four "
                 "methods; the Cache, DiskArray and StorageSystem\n"
                 "pieces compose around any policy — PA-LRU itself is "
                 "built exactly this way.\n";
    return 0;
}
