/**
 * @file
 * Streaming ingestion walkthrough: write a workload out as a text
 * trace, convert it to the compact binary .pct format, and drive the
 * simulator straight from the file — record by record, in constant
 * memory — getting statistics bit-identical to the in-memory path.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/streaming_sim
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/sink.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    // 1. A workload on disk, as if it came from a trace archive.
    SyntheticParams params;
    params.numRequests = 20000;
    params.numDisks = 6;
    params.writeRatio = 0.25;
    const Trace trace = generateSynthetic(params);

    const std::string txt = std::string(std::tmpnam(nullptr)) + ".txt";
    writeTraceFile(txt, trace);

    // 2. Convert it to .pct: one streaming pass, constant memory.
    //    The binary header records count/disks/end-time, so readers
    //    get exact hints without scanning, and an FNV-1a checksum
    //    guards the record bytes.
    const std::string pct = std::string(std::tmpnam(nullptr)) + ".pct";
    {
        const auto src = tracefmt::openTraceSource(txt);
        const auto sink = tracefmt::openTraceSink(pct);
        tracefmt::copyAll(*src, *sink);
    }
    const tracefmt::PctInfo info = tracefmt::readPctInfo(pct);
    std::cout << "converted " << info.records << " records to .pct ("
              << info.numDisks << " disks, "
              << fmt(info.endTime, 1) << " s)\n\n";

    // 3. Simulate from each representation. openTraceSource() sniffs
    //    the format; .pct gets the zero-copy mmap reader. The
    //    streaming overload of runExperiment() pulls records one at a
    //    time, so the trace never has to fit in RAM.
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::ARC;
    cfg.cacheBlocks = 512;

    TextTable table;
    table.header({"Input", "Energy (J)", "Hit ratio", "Mean resp (ms)"});
    const auto report = [&](const char *label,
                            const ExperimentResult &r) {
        table.row({label, fmt(r.totalEnergy, 2),
                   fmt(r.cache.hitRatio(), 4),
                   fmt(r.responses.mean() * 1000.0, 3)});
    };

    // Reload the text file so all three runs descend from the very
    // same parsed doubles.
    const Trace loaded = readTraceFile(txt);
    report("in-memory", runExperiment(loaded, cfg));
    {
        const auto src = tracefmt::openTraceSource(txt);
        report("stream text", runExperiment(*src, cfg));
    }
    {
        const auto src = tracefmt::openTraceSource(pct);
        report("stream .pct", runExperiment(*src, cfg));
    }
    table.print(std::cout);
    std::cout << "\nall three rows are identical by construction: the "
                 "streaming\npaths replay the exact same access "
                 "sequence.\n";

    std::remove(txt.c_str());
    std::remove(pct.c_str());
    return 0;
}
