/**
 * @file
 * Write-policy walk-through: compares WT / WB / WBEU / WTDU energy
 * on a write-heavy workload, then demonstrates the WTDU log's
 * timestamped crash-recovery protocol step by step.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/wtdu_log.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

void
comparePolicies()
{
    SyntheticParams p;
    p.numRequests = 20000;
    p.writeRatio = 0.8;
    p.arrival = ArrivalModel::pareto(500.0, 1.5);
    const Trace trace = generateSynthetic(p);

    std::cout << "Write-heavy workload (" << trace.size()
              << " requests, 80% writes):\n\n";
    TextTable t;
    t.header({"Write policy", "Energy (J)", "vs WT",
              "Mean resp (ms)", "Log writes"});
    double wt_energy = 0;
    for (WritePolicy wp :
         {WritePolicy::WriteThrough, WritePolicy::WriteBack,
          WritePolicy::WriteBackEagerUpdate,
          WritePolicy::WriteThroughDeferredUpdate}) {
        ExperimentConfig cfg;
        cfg.cacheBlocks = 4096;
        cfg.storage.writePolicy = wp;
        const ExperimentResult r = runExperiment(trace, cfg);
        if (wp == WritePolicy::WriteThrough)
            wt_energy = r.totalEnergy;
        t.row({writePolicyName(wp), fmt(r.totalEnergy, 0),
               fmtPct(1.0 - r.totalEnergy / wt_energy, 1),
               fmt(r.responses.mean() * 1000.0, 2),
               std::to_string(r.logWrites)});
    }
    t.print(std::cout);
}

void
recoveryWalkthrough()
{
    std::cout << "\n=== WTDU crash-recovery walk-through ===\n\n";
    WtduLog log(/*num_disks=*/1, /*region_blocks=*/4);

    std::cout << "1. Disk 0 sleeps; three writes are deferred into "
                 "its log region:\n";
    log.append(0, 100, /*version=*/1);
    log.append(0, 101, 2);
    log.append(0, 100, 3); // block 100 written again
    std::cout << "   region used " << log.used(0) << "/4, timestamp "
              << log.timestamp(0) << "\n";

    std::cout << "2. CRASH before the disk ever woke. Recovery scans "
                 "the region:\n";
    for (const auto &e : log.recover(0)) {
        std::cout << "   replay block " << e.block << " at version "
                  << e.version << "\n";
    }

    std::cout << "3. Suppose instead the disk woke up: the cache "
                 "flushes the logged blocks,\n   then the region "
                 "retires (timestamp bump, pointer reset):\n";
    log.retire(0);
    std::cout << "   region used " << log.used(0) << "/4, timestamp "
              << log.timestamp(0) << "\n";

    std::cout << "4. A later crash replays nothing stale:\n";
    const auto live = log.recover(0);
    std::cout << "   " << live.size()
              << " entries to replay (old generation is inert).\n";

    std::cout << "5. New writes after the retire reuse the slots:\n";
    log.append(0, 200, 4);
    for (const auto &e : log.recover(0)) {
        std::cout << "   replay block " << e.block << " at version "
                  << e.version << " (stamp " << e.stamp << ")\n";
    }
}

} // namespace

int
main()
{
    comparePolicies();
    recoveryWalkthrough();
    return 0;
}
