/**
 * @file
 * A Figure-6-style study at example scale: all five replacement
 * policies (infinite cache, Belady, OPG, LRU, PA-LRU) over the
 * OLTP-like workload, under both Oracle and Practical disk power
 * management, with per-disk drill-down for the protected disks.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

ExperimentResult
run(const Trace &trace, PolicyKind policy, DpmChoice dpm)
{
    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.dpm = dpm;
    cfg.cacheBlocks = 1024;
    cfg.pa.epochLength = 450;
    return runExperiment(trace, cfg);
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 1800;
    const Trace trace = makeOltpTrace(params);
    std::cout << "OLTP-like trace: " << trace.size() << " requests, "
              << trace.numDisks() << " disks, 30 minutes.\n\n";

    TextTable t;
    t.header({"Policy", "Oracle E (J)", "Practical E (J)",
              "Miss ratio", "Mean resp (ms)"});
    for (PolicyKind k :
         {PolicyKind::InfiniteCache, PolicyKind::Belady, PolicyKind::OPG,
          PolicyKind::LRU, PolicyKind::PALRU}) {
        const auto oracle = run(trace, k, DpmChoice::Oracle);
        const auto practical = run(trace, k, DpmChoice::Practical);
        t.row({practical.policyName, fmt(oracle.totalEnergy, 0),
               fmt(practical.totalEnergy, 0),
               fmt(1.0 - practical.cache.hitRatio(), 3),
               fmt(practical.responses.mean() * 1000.0, 2)});
    }
    t.print(std::cout);

    // Drill into the disks PA-LRU protects.
    const auto lru = run(trace, PolicyKind::LRU, DpmChoice::Practical);
    const auto pa = run(trace, PolicyKind::PALRU, DpmChoice::Practical);
    std::cout << "\nQuiet-disk drill-down (LRU -> PA-LRU):\n\n";
    TextTable d;
    d.header({"Disk", "disk accesses", "spin-ups",
              "standby time (s)"});
    for (DiskId disk = params.busyDisks;
         disk < std::min<std::size_t>(params.busyDisks + 5,
                                      lru.perDisk.size());
         ++disk) {
        d.row({"disk " + std::to_string(disk),
               std::to_string(lru.diskAccesses[disk]) + " -> " +
                   std::to_string(pa.diskAccesses[disk]),
               std::to_string(lru.perDisk[disk].spinUps) + " -> " +
                   std::to_string(pa.perDisk[disk].spinUps),
               fmt(lru.perDisk[disk].timePerMode.back(), 0) + " -> " +
                   fmt(pa.perDisk[disk].timePerMode.back(), 0)});
    }
    d.print(std::cout);
    return 0;
}
