/**
 * @file
 * Trace analyzer: characterize an I/O trace file (or, with no
 * arguments, a built-in demo trace) the way the paper's Table 2
 * does — per-trace and per-disk request counts, write ratio, mean
 * inter-arrival times, and footprint.
 *
 * Usage:
 *   trace_analyzer [trace.txt]
 *
 * Trace format: one request per line, "time disk block count R|W";
 * '#' starts a comment. Use writeTraceFile()/generateSynthetic() to
 * produce compatible files.
 */

#include <iostream>

#include "trace/stats.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

int
main(int argc, char **argv)
{
    Trace trace;
    if (argc > 1) {
        trace = readTraceFile(argv[1]);
        std::cout << "Loaded " << trace.size() << " requests from "
                  << argv[1] << "\n\n";
    } else {
        OltpParams p;
        p.duration = 900;
        trace = makeOltpTrace(p);
        std::cout << "No file given; analyzing a built-in OLTP-like "
                     "demo trace.\n\n";
    }

    const TraceStats s = characterize(trace);

    TextTable summary;
    summary.row({"requests", std::to_string(s.requests)});
    summary.row({"disks", std::to_string(s.disks)});
    summary.row({"write ratio", fmtPct(s.writeRatio, 1)});
    summary.row({"mean inter-arrival",
                 fmt(s.meanInterArrival * 1000.0, 3) + " ms"});
    summary.row({"duration", fmt(s.duration, 1) + " s"});
    summary.row({"unique blocks", std::to_string(s.uniqueBlocks)});
    summary.print(std::cout);

    std::cout << "\nPer-disk breakdown:\n\n";
    TextTable t;
    t.header({"disk", "requests", "mean inter-arrival (s)",
              "unique blocks"});
    for (uint32_t d = 0; d < s.disks; ++d) {
        t.row({std::to_string(d), std::to_string(s.perDiskRequests[d]),
               fmt(s.perDiskInterArrival[d], 3),
               std::to_string(s.perDiskUnique[d])});
    }
    t.print(std::cout);
    return 0;
}
