#include <gtest/gtest.h>

#include "trace/stats.hh"
#include "trace/synthetic.hh"
#include "tracefmt/trace_source.hh"

namespace pacache
{
namespace
{

TEST(TraceStatsTest, EmptyTrace)
{
    const TraceStats s = characterize(Trace{});
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.disks, 0u);
}

TEST(TraceStatsTest, CountsAndRatios)
{
    Trace t;
    t.append({0.0, 0, 1, 1, false});
    t.append({1.0, 1, 2, 1, true});
    t.append({2.0, 0, 1, 1, true});
    t.append({3.0, 0, 3, 1, false});
    const TraceStats s = characterize(t);
    EXPECT_EQ(s.requests, 4u);
    EXPECT_EQ(s.disks, 2u);
    EXPECT_DOUBLE_EQ(s.writeRatio, 0.5);
    EXPECT_DOUBLE_EQ(s.meanInterArrival, 1.0);
    EXPECT_EQ(s.perDiskRequests[0], 3u);
    EXPECT_EQ(s.perDiskRequests[1], 1u);
    EXPECT_EQ(s.uniqueBlocks, 3u); // disk0:{1,3}, disk1:{2}
}

TEST(TraceStatsTest, MultiBlockRequestsCountUniqueBlocks)
{
    Trace t;
    t.append({0.0, 0, 10, 4, false}); // blocks 10..13
    t.append({1.0, 0, 12, 4, false}); // blocks 12..15
    const TraceStats s = characterize(t);
    EXPECT_EQ(s.uniqueBlocks, 6u); // 10..15
}

TEST(TraceStatsTest, PerDiskInterArrival)
{
    Trace t;
    t.append({0.0, 0, 1, 1, false});
    t.append({2.0, 0, 2, 1, false});
    t.append({8.0, 0, 3, 1, false});
    const TraceStats s = characterize(t);
    EXPECT_DOUBLE_EQ(s.perDiskInterArrival[0], 4.0);
}

TEST(TraceStatsTest, SingleRequestDiskHasZeroInterArrival)
{
    Trace t;
    t.append({5.0, 0, 1, 1, false});
    const TraceStats s = characterize(t);
    EXPECT_DOUBLE_EQ(s.perDiskInterArrival[0], 0.0);
}

TEST(TraceStatsTest, StreamingOverloadMatchesMaterialized)
{
    SyntheticParams p;
    p.numRequests = 4000;
    p.numDisks = 7;
    p.writeRatio = 0.35;
    p.address.footprintBlocks = 250;
    p.seed = 19;
    const Trace t = generateSynthetic(p);

    const TraceStats want = characterize(t);
    tracefmt::MemorySource src(t);
    const TraceStats got = characterize(src);

    EXPECT_EQ(got.requests, want.requests);
    EXPECT_EQ(got.disks, want.disks);
    EXPECT_EQ(got.uniqueBlocks, want.uniqueBlocks);
    EXPECT_EQ(got.writeRatio, want.writeRatio);
    EXPECT_EQ(got.duration, want.duration);
    EXPECT_EQ(got.meanInterArrival, want.meanInterArrival);
    EXPECT_EQ(got.perDiskRequests, want.perDiskRequests);
    EXPECT_EQ(got.perDiskUnique, want.perDiskUnique);
    EXPECT_EQ(got.perDiskInterArrival, want.perDiskInterArrival);
}

TEST(TraceStatsTest, StreamingOverloadEmptySource)
{
    tracefmt::MemorySource src(Trace{});
    const TraceStats s = characterize(src);
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.disks, 0u);
}

} // namespace
} // namespace pacache
