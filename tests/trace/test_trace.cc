#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace pacache
{
namespace
{

Trace
smallTrace()
{
    Trace t;
    t.append({0.0, 0, 10, 1, false});
    t.append({1.0, 1, 20, 2, true});
    t.append({2.5, 0, 30, 1, false});
    return t;
}

TEST(Trace, AppendKeepsOrderInvariants)
{
    Trace t = smallTrace();
    EXPECT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.endTime(), 2.5);
    EXPECT_EQ(t.numDisks(), 2u);
}

TEST(Trace, AppendOutOfOrderPanics)
{
    Trace t;
    t.append({5.0, 0, 1, 1, false});
    EXPECT_ANY_THROW(t.append({4.0, 0, 2, 1, false}));
}

TEST(Trace, ConstructorValidatesOrder)
{
    std::vector<TraceRecord> recs{{2.0, 0, 1, 1, false},
                                  {1.0, 0, 2, 1, false}};
    EXPECT_ANY_THROW(Trace{recs});
}

TEST(Trace, EmptyTraceBasics)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.numDisks(), 0u);
    EXPECT_DOUBLE_EQ(t.endTime(), 0.0);
}

TEST(TraceIo, RoundTripsThroughStream)
{
    const Trace t = smallTrace();
    std::stringstream ss;
    writeTrace(ss, t);
    const Trace back = readTrace(ss);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].disk, t[i].disk);
        EXPECT_EQ(back[i].block, t[i].block);
        EXPECT_EQ(back[i].numBlocks, t[i].numBlocks);
        EXPECT_EQ(back[i].write, t[i].write);
        EXPECT_NEAR(back[i].time, t[i].time, 1e-9);
    }
}

TEST(TraceIo, SkipsCommentsAndBlankLines)
{
    std::stringstream ss("# comment\n\n1.0 0 5 1 R\n# another\n");
    const Trace t = readTrace(ss);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].block, 5u);
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_ANY_THROW(readTraceFile("/nonexistent/path/trace.txt"));
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/pacache_trace.txt";
    writeTraceFile(path, smallTrace());
    const Trace back = readTraceFile(path);
    EXPECT_EQ(back.size(), 3u);
}

} // namespace
} // namespace pacache
