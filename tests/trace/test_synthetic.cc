#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/stats.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

TEST(ArrivalModelTest, ExponentialMeanMatches)
{
    Rng rng(1);
    const auto m = ArrivalModel::exponential(250.0);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += m.sample(rng);
    EXPECT_NEAR(sum / n, 0.250, 0.01);
}

TEST(ArrivalModelTest, ParetoMeanRoughlyMatches)
{
    Rng rng(2);
    // Shape 1.9 keeps the variance blow-up manageable for the test.
    const auto m = ArrivalModel::pareto(100.0, 1.9);
    double sum = 0;
    const int n = 2000000;
    for (int i = 0; i < n; ++i)
        sum += m.sample(rng);
    EXPECT_NEAR(sum / n, 0.100, 0.02);
}

TEST(ArrivalModelTest, ParetoHasHeavierTail)
{
    // At equal mean, Pareto(1.5) produces far more very-long gaps
    // than Exponential — the burstiness the paper wants.
    Rng r1(3), r2(3);
    const auto exp_m = ArrivalModel::exponential(100.0);
    const auto par_m = ArrivalModel::pareto(100.0, 1.5);
    int exp_long = 0, par_long = 0;
    for (int i = 0; i < 50000; ++i) {
        exp_long += exp_m.sample(r1) > 0.5;
        par_long += par_m.sample(r2) > 0.5;
    }
    EXPECT_GT(par_long, 2 * exp_long);
}

TEST(AddressGenerator, StaysInFootprint)
{
    AddressGenerator::Params p;
    p.footprintBlocks = 1000;
    AddressGenerator gen(p);
    Rng rng(4);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(gen.next(rng), 1000u);
}

TEST(AddressGenerator, SequentialRunsAppear)
{
    AddressGenerator::Params p;
    p.seqProb = 1.0;
    p.localProb = 0.0;
    p.footprintBlocks = 10000;
    AddressGenerator gen(p);
    Rng rng(5);
    BlockNum prev = gen.next(rng);
    for (int i = 0; i < 100; ++i) {
        const BlockNum cur = gen.next(rng);
        EXPECT_EQ(cur, (prev + 1) % 10000);
        prev = cur;
    }
}

TEST(AddressGenerator, LocalAccessesStayClose)
{
    AddressGenerator::Params p;
    p.seqProb = 0.0;
    p.localProb = 1.0;
    p.maxLocalDistance = 10;
    p.footprintBlocks = 100000;
    AddressGenerator gen(p);
    Rng rng(6);
    BlockNum prev = gen.next(rng);
    for (int i = 0; i < 1000; ++i) {
        const BlockNum cur = gen.next(rng);
        const auto dist = cur > prev ? cur - prev : prev - cur;
        // Within maxLocalDistance, modulo footprint wraps.
        EXPECT_TRUE(dist <= 10 || dist >= 100000 - 10);
        prev = cur;
    }
}

TEST(AddressGenerator, ReuseCreatesRepeats)
{
    AddressGenerator::Params hi, lo;
    hi.seqProb = lo.seqProb = 0.0;
    hi.localProb = lo.localProb = 0.0;
    hi.footprintBlocks = lo.footprintBlocks = 1u << 30;
    hi.reuseProb = 0.9;
    lo.reuseProb = 0.0;

    auto unique_frac = [](AddressGenerator gen, uint64_t seed) {
        Rng rng(seed);
        std::unordered_set<BlockNum> seen;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            seen.insert(gen.next(rng));
        return static_cast<double>(seen.size()) / n;
    };

    EXPECT_LT(unique_frac(AddressGenerator(hi), 7),
              unique_frac(AddressGenerator(lo), 7) * 0.5);
}

TEST(Synthetic, GeneratesRequestedCount)
{
    SyntheticParams p;
    p.numRequests = 5000;
    p.numDisks = 4;
    const Trace t = generateSynthetic(p);
    EXPECT_EQ(t.size(), 5000u);
    EXPECT_LE(t.numDisks(), 4u);
}

TEST(Synthetic, WriteRatioIsRespected)
{
    SyntheticParams p;
    p.numRequests = 50000;
    p.writeRatio = 0.3;
    const TraceStats s = characterize(generateSynthetic(p));
    EXPECT_NEAR(s.writeRatio, 0.3, 0.02);
}

TEST(Synthetic, MeanInterarrivalMatchesModel)
{
    SyntheticParams p;
    p.numRequests = 50000;
    p.arrival = ArrivalModel::exponential(100.0);
    const TraceStats s = characterize(generateSynthetic(p));
    EXPECT_NEAR(s.meanInterArrival, 0.100, 0.01);
}

TEST(Synthetic, DeterministicUnderSeed)
{
    SyntheticParams p;
    p.numRequests = 1000;
    const Trace a = generateSynthetic(p);
    const Trace b = generateSynthetic(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticParams p;
    p.numRequests = 1000;
    const Trace a = generateSynthetic(p);
    p.seed = 43;
    const Trace b = generateSynthetic(p);
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += !(a[i] == b[i]);
    EXPECT_GT(diff, 500);
}

TEST(PerDiskGenerator, RespectsDurationAndDisks)
{
    std::vector<DiskStream> streams(3);
    for (auto &s : streams)
        s.arrival = ArrivalModel::exponential(50.0);
    const Trace t = generatePerDisk(streams, 60.0, 9);
    EXPECT_GT(t.size(), 1000u); // 3 disks * ~20/s * 60s
    EXPECT_LE(t.endTime(), 60.0);
    EXPECT_EQ(t.numDisks(), 3u);
}

TEST(PerDiskGenerator, TimeOrdered)
{
    std::vector<DiskStream> streams(5);
    const Trace t = generatePerDisk(streams, 300.0, 10);
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_LE(t[i - 1].time, t[i].time);
}

TEST(PerDiskGenerator, PerDiskRatesDiffer)
{
    std::vector<DiskStream> streams(2);
    streams[0].arrival = ArrivalModel::exponential(10.0);
    streams[1].arrival = ArrivalModel::exponential(1000.0);
    const TraceStats s = characterize(generatePerDisk(streams, 120.0, 11));
    EXPECT_GT(s.perDiskRequests[0], s.perDiskRequests[1] * 20);
}

} // namespace
} // namespace pacache
