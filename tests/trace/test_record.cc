#include <gtest/gtest.h>

#include "trace/record.hh"

namespace pacache
{
namespace
{

TEST(TraceRecord, RoundTripsThroughText)
{
    TraceRecord rec{12.5, 3, 123456789ULL, 8, true};
    const TraceRecord back = parseRecord(toString(rec));
    EXPECT_DOUBLE_EQ(back.time, rec.time);
    EXPECT_EQ(back.disk, rec.disk);
    EXPECT_EQ(back.block, rec.block);
    EXPECT_EQ(back.numBlocks, rec.numBlocks);
    EXPECT_EQ(back.write, rec.write);
}

TEST(TraceRecord, ReadFlagRoundTrips)
{
    TraceRecord rec{0.0, 0, 7, 1, false};
    EXPECT_FALSE(parseRecord(toString(rec)).write);
}

TEST(TraceRecord, ParsesLowercaseFlags)
{
    EXPECT_TRUE(parseRecord("1.0 0 5 1 w").write);
    EXPECT_FALSE(parseRecord("1.0 0 5 1 r").write);
}

TEST(TraceRecord, RejectsMalformedLine)
{
    EXPECT_ANY_THROW(parseRecord("not a record"));
    EXPECT_ANY_THROW(parseRecord("1.0 0 5 1"));
    EXPECT_ANY_THROW(parseRecord("1.0 0 5 1 X"));
}

TEST(TraceRecord, PreservesSubMillisecondTimes)
{
    TraceRecord rec{0.000123456, 1, 2, 1, false};
    EXPECT_NEAR(parseRecord(toString(rec)).time, rec.time, 1e-9);
}

TEST(BlockIdTest, PackedIsInjectiveAcrossDisks)
{
    BlockId a{1, 100}, b{2, 100};
    EXPECT_NE(a.packed(), b.packed());
}

TEST(BlockIdTest, OrderingIsLexicographic)
{
    EXPECT_LT((BlockId{0, 999}), (BlockId{1, 0}));
    EXPECT_LT((BlockId{1, 5}), (BlockId{1, 6}));
}

} // namespace
} // namespace pacache
