/**
 * @file
 * StreamingSyntheticSource must replicate generatePerDisk() bit for
 * bit: same per-stream RNG seeding, same min-heap merge order, so the
 * streamed record sequence equals the materialized trace exactly, and
 * rewind() replays it identically.
 */

#include <gtest/gtest.h>

#include "trace/stream_gen.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

std::vector<DiskStream>
mixedStreams()
{
    std::vector<DiskStream> streams(4);
    streams[0].arrival = ArrivalModel::pareto(30.0);
    streams[0].writeRatio = 0.4;
    streams[0].address.footprintBlocks = 500;
    streams[1].arrival = ArrivalModel::exponential(80.0);
    streams[1].address.footprintBlocks = 64;
    streams[1].address.reuseProb = 0.9;
    streams[2].arrival = ArrivalModel::pareto(200.0, 1.3);
    streams[3].arrival = ArrivalModel::exponential(500.0);
    streams[3].writeRatio = 0.0;
    return streams;
}

void
expectSameRecords(const Trace &want, tracefmt::TraceSource &got)
{
    TraceRecord rec;
    std::size_t i = 0;
    while (got.next(rec)) {
        ASSERT_LT(i, want.size());
        EXPECT_EQ(rec.time, want[i].time) << i;
        EXPECT_EQ(rec.disk, want[i].disk) << i;
        EXPECT_EQ(rec.block, want[i].block) << i;
        EXPECT_EQ(rec.numBlocks, want[i].numBlocks) << i;
        EXPECT_EQ(rec.write, want[i].write) << i;
        ++i;
    }
    EXPECT_EQ(i, want.size());
}

TEST(StreamGen, MatchesGeneratePerDiskBitForBit)
{
    const auto streams = mixedStreams();
    const Trace want = generatePerDisk(streams, 600.0, 77);
    ASSERT_GT(want.size(), 100u);
    StreamingSyntheticSource src(streams, 600.0, 77);
    expectSameRecords(want, src);
}

TEST(StreamGen, RewindReplaysIdentically)
{
    const auto streams = mixedStreams();
    const Trace want = generatePerDisk(streams, 300.0, 5);
    StreamingSyntheticSource src(streams, 300.0, 5);
    expectSameRecords(want, src);
    src.rewind();
    expectSameRecords(want, src);
}

TEST(StreamGen, RequestCapStopsEarly)
{
    const auto streams = mixedStreams();
    const Trace full = generatePerDisk(streams, 600.0, 3);
    const uint64_t cap = full.size() / 2;
    StreamingSyntheticSource src(streams, 600.0, 3, cap);
    EXPECT_EQ(src.sizeHint(), cap);

    TraceRecord rec;
    uint64_t n = 0;
    while (src.next(rec)) {
        ASSERT_LT(n, full.size());
        EXPECT_EQ(rec.time, full[n].time) << n;
        EXPECT_EQ(rec.block, full[n].block) << n;
        ++n;
    }
    EXPECT_EQ(n, cap);
}

TEST(StreamGen, UnboundedDurationNeedsACap)
{
    StreamingSyntheticSource src(mixedStreams(), 0.0, 1, 500);
    TraceRecord rec;
    uint64_t n = 0;
    Time last = 0;
    while (src.next(rec)) {
        EXPECT_GE(rec.time, last);
        last = rec.time;
        ++n;
    }
    EXPECT_EQ(n, 500u);
}

TEST(StreamGen, ScaledWorkloadsCoverEveryDisk)
{
    for (const auto &streams :
         {scaledOltpStreams(16), scaledCelloStreams(16)}) {
        ASSERT_EQ(streams.size(), 16u);
        StreamingSyntheticSource src(streams, 0.0, 9, 20000);
        EXPECT_EQ(src.numDisksHint(), 16u);
        std::vector<uint64_t> perDisk(16, 0);
        TraceRecord rec;
        while (src.next(rec)) {
            ASSERT_LT(rec.disk, 16u);
            perDisk[rec.disk]++;
        }
        // Every spindle must see traffic — the cello falloff is
        // capped so cold disks stay live, not numerically never.
        for (std::size_t d = 0; d < perDisk.size(); ++d)
            EXPECT_GT(perDisk[d], 0u) << "disk " << d;
    }
}

} // namespace
} // namespace pacache
