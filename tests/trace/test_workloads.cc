#include <gtest/gtest.h>

#include "trace/stats.hh"
#include "trace/workloads.hh"

namespace pacache
{
namespace
{

OltpParams
smallOltp()
{
    OltpParams p;
    p.duration = 600; // keep tests fast
    return p;
}

CelloParams
smallCello()
{
    CelloParams p;
    p.duration = 60;
    return p;
}

TEST(Workloads, OltpShape)
{
    const TraceStats s = characterize(makeOltpTrace(smallOltp()));
    EXPECT_EQ(s.disks, 21u);
    EXPECT_NEAR(s.writeRatio, 0.22, 0.04);
    EXPECT_GT(s.requests, 500u);
}

TEST(Workloads, OltpBusyDisksDominateTraffic)
{
    const OltpParams p = smallOltp();
    const TraceStats s = characterize(makeOltpTrace(p));
    uint64_t busy = 0, quiet = 0;
    for (uint32_t d = 0; d < s.disks; ++d) {
        if (d < p.busyDisks)
            busy += s.perDiskRequests[d];
        else
            quiet += s.perDiskRequests[d];
    }
    EXPECT_GT(busy, quiet);
}

TEST(Workloads, OltpQuietDisksHaveSmallFootprints)
{
    const OltpParams p = smallOltp();
    const TraceStats s = characterize(makeOltpTrace(p));
    for (uint32_t d = p.busyDisks; d < s.disks; ++d)
        EXPECT_LE(s.perDiskUnique[d], p.quietFootprint);
}

TEST(Workloads, OltpQuietDisksReuseBlocks)
{
    // Quiet disks must re-reference: unique blocks well below
    // accesses once the stream is long enough.
    OltpParams p = smallOltp();
    p.duration = 3600;
    const TraceStats s = characterize(makeOltpTrace(p));
    for (uint32_t d = p.busyDisks; d < s.disks; ++d) {
        if (s.perDiskRequests[d] > 200) {
            EXPECT_LT(s.perDiskUnique[d],
                      s.perDiskRequests[d] * 8 / 10);
        }
    }
}

TEST(Workloads, CelloShape)
{
    const TraceStats s = characterize(makeCelloTrace(smallCello()));
    EXPECT_EQ(s.disks, 19u);
    EXPECT_NEAR(s.writeRatio, 0.38, 0.05);
    // ~5.6ms overall inter-arrival.
    EXPECT_LT(s.meanInterArrival, 0.02);
}

TEST(Workloads, CelloIsColdMissDominated)
{
    const TraceStats s = characterize(makeCelloTrace(smallCello()));
    // Most accesses touch blocks never seen before (paper: 64%).
    EXPECT_GT(static_cast<double>(s.uniqueBlocks) /
                  static_cast<double>(s.requests),
              0.45);
}

TEST(Workloads, Deterministic)
{
    const Trace a = makeOltpTrace(smallOltp());
    const Trace b = makeOltpTrace(smallOltp());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(a.size(), 500); ++i)
        EXPECT_EQ(a[i], b[i]);
}

} // namespace
} // namespace pacache
