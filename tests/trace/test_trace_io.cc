#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "trace/trace_io.hh"

namespace pacache
{
namespace
{

/** Run @p fn, which must throw, and return the exception message. */
std::string
messageOf(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const std::exception &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected an exception";
    return {};
}

TEST(TraceIo, RoundTripsThroughAStream)
{
    Trace t;
    t.append({0.0, 0, 10, 2, false});
    t.append({1.25, 3, 99, 1, true});

    std::ostringstream os;
    writeTrace(os, t);
    std::istringstream is(os.str());
    const Trace back = readTrace(is);

    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(back[i], t[i]);
    EXPECT_EQ(back.numDisks(), 4u);
}

TEST(TraceIo, MalformedLineReportsNameLineAndToken)
{
    std::istringstream is("0.0 0 1 1 R\n"
                          "# comment lines still count\n"
                          "oops 0 2 1 R\n");
    const std::string msg =
        messageOf([&] { readTrace(is, "input.trace"); });
    EXPECT_NE(msg.find("input.trace:3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
}

TEST(TraceIo, OutOfOrderLineReportsContext)
{
    std::istringstream is("2.0 0 1 1 R\n1.0 0 2 1 R\n");
    const std::string msg = messageOf([&] { readTrace(is, "ooo"); });
    EXPECT_NE(msg.find("ooo:2"), std::string::npos) << msg;
}

TEST(TraceIo, DefaultStreamNameAppearsInErrors)
{
    std::istringstream is("garbage\n");
    const std::string msg = messageOf([&] { readTrace(is); });
    EXPECT_NE(msg.find("<stream>:1"), std::string::npos) << msg;
}

TEST(TraceIo, MissingFileIsFatalWithPath)
{
    const std::string msg =
        messageOf([] { readTraceFile("/no/such/dir/trace.txt"); });
    EXPECT_NE(msg.find("/no/such/dir/trace.txt"), std::string::npos)
        << msg;
}

TEST(TraceNumDisks, StaysCachedAcrossAppends)
{
    Trace t;
    EXPECT_EQ(t.numDisks(), 0u);
    t.append({0.0, 2, 1, 1, false});
    EXPECT_EQ(t.numDisks(), 3u);
    t.append({1.0, 0, 1, 1, false}); // smaller id: unchanged
    EXPECT_EQ(t.numDisks(), 3u);
    t.append({2.0, 7, 1, 1, true});
    EXPECT_EQ(t.numDisks(), 8u);
}

TEST(TraceNumDisks, VectorConstructorComputesOnce)
{
    const Trace t(std::vector<TraceRecord>{{0.0, 5, 1, 1, false},
                                           {1.0, 1, 2, 1, true}});
    EXPECT_EQ(t.numDisks(), 6u);
}

} // namespace
} // namespace pacache
