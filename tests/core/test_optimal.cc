#include <gtest/gtest.h>

#include "cache/belady.hh"
#include "cache/lru.hh"
#include "core/opg.hh"
#include "core/optimal.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

std::vector<BlockAccess>
stream(std::initializer_list<std::pair<Time, BlockNum>> entries,
       DiskId disk = 0)
{
    std::vector<BlockAccess> out;
    for (const auto &[t, n] : entries)
        out.push_back({t, BlockId{disk, n}, false, out.size()});
    return out;
}

SchedulePricing
pricing(const PowerModel &pm, Time horizon)
{
    SchedulePricing p;
    p.pm = &pm;
    p.horizon = horizon;
    return p;
}

TEST(ScheduleEnergy, SingleDiskHandComputed)
{
    const PowerModel pm;
    const SchedulePricing cfg = pricing(pm, 100.0);
    // One access at t=40: closed gap envelope(40) + service, then an
    // open 60 s gap (standby park + spin-down is cheapest).
    const Energy e = scheduleEnergy({{40.0}}, cfg);
    const Energy open = 2.5 * 60.0 + 13.0;
    EXPECT_NEAR(e, pm.envelope(40.0) + cfg.serviceEnergyPerMiss + open,
                1e-9);
}

TEST(ScheduleEnergy, EmptyDiskIsOneOpenGap)
{
    const PowerModel pm;
    const Energy e = scheduleEnergy({{}}, pricing(pm, 1000.0));
    EXPECT_NEAR(e, 2.5 * 1000.0 + 13.0, 1e-9);
}

TEST(ScheduleEnergy, DisksPriceIndependently)
{
    const PowerModel pm;
    const SchedulePricing cfg = pricing(pm, 100.0);
    const Energy both = scheduleEnergy({{40.0}, {70.0}}, cfg);
    const Energy a = scheduleEnergy({{40.0}}, cfg);
    const Energy b = scheduleEnergy({{70.0}}, cfg);
    EXPECT_NEAR(both, a + b - (2.5 * 100.0 + 13.0) * 0, 1e-9);
    EXPECT_NEAR(both, a + b, 1e-9);
}

TEST(Optimal, NoEvictionsMeansColdMissesOnly)
{
    const PowerModel pm;
    const auto accs = stream({{1, 1}, {2, 2}, {3, 1}, {4, 2}});
    const auto r = optimalEnergy(accs, 4, pricing(pm, 10.0));
    EXPECT_EQ(r.misses, 2u);
    // Cold misses alone define the schedule.
    EXPECT_NEAR(r.energy,
                scheduleEnergy({{1.0, 2.0}}, pricing(pm, 10.0)), 1e-9);
}

TEST(Optimal, LowerBoundsBeladyOnFigure3Pattern)
{
    // Figure-3 style: an energy-aware schedule beats MIN.
    const auto accs = stream({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                              {5, 2}, {6, 5}, {7, 3}, {8, 4}, {16, 1}});
    const PowerModel pm;
    const SchedulePricing cfg = pricing(pm, 30.0);

    const auto opt = optimalEnergy(accs, 4, cfg);

    BeladyPolicy belady;
    const Energy belady_e = policyScheduleEnergy(accs, 4, belady, cfg);
    EXPECT_LE(opt.energy, belady_e + 1e-9);
}

TEST(Optimal, StrictlyBeatsBeladyWhenClusteringPays)
{
    // Belady keeps the block whose reuse is nearest, scattering a
    // miss into a long-idle window; the optimal schedule re-misses
    // inside the busy cluster instead. Cache of 1, disk 0 busy
    // cluster at t=0..2, one far re-reference at t=100, and another
    // block interleaved.
    const auto accs = stream(
        {{0, 1}, {1, 2}, {2, 1}, {100, 1}, {101, 2}});
    const PowerModel pm;
    const SchedulePricing cfg = pricing(pm, 200.0);

    const auto opt = optimalEnergy(accs, 1, cfg);
    BeladyPolicy belady;
    const Energy belady_e = policyScheduleEnergy(accs, 1, belady, cfg);
    EXPECT_LE(opt.energy, belady_e + 1e-9);
    EXPECT_GT(opt.statesVisited, 0u);
}

class OptimalSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OptimalSweep, LowerBoundsEveryPolicyOnRandomTinyTraces)
{
    Rng rng(GetParam());
    const PowerModel pm;
    for (int trial = 0; trial < 10; ++trial) {
        // Random tiny trace: 2 disks, 5 blocks each, ~18 accesses,
        // bursty times.
        std::vector<BlockAccess> accs;
        Time t = 0;
        const std::size_t n = 14 + rng.below(6);
        for (std::size_t i = 0; i < n; ++i) {
            t += rng.chance(0.3) ? rng.uniform(20.0, 60.0)
                                 : rng.uniform(0.1, 2.0);
            accs.push_back({t,
                            BlockId{static_cast<DiskId>(rng.below(2)),
                                    rng.below(5)},
                            false, i});
        }
        const SchedulePricing cfg = pricing(pm, t + 50.0);
        const auto opt = optimalEnergy(accs, 3, cfg);

        BeladyPolicy belady;
        LruPolicy lru;
        OpgPolicy opg(pm, DpmKind::Oracle, 0);
        const Energy be = policyScheduleEnergy(accs, 3, belady, cfg);
        const Energy le = policyScheduleEnergy(accs, 3, lru, cfg);
        const Energy oe = policyScheduleEnergy(accs, 3, opg, cfg);

        EXPECT_LE(opt.energy, be + 1e-9) << "trial " << trial;
        EXPECT_LE(opt.energy, le + 1e-9) << "trial " << trial;
        EXPECT_LE(opt.energy, oe + 1e-9) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalSweep,
                         ::testing::Values(31u, 32u, 33u, 34u));

TEST(Optimal, OpgTracksOptimalBetterThanLruOnAverage)
{
    // Aggregate check of the paper's premise: over random tiny
    // traces, OPG's energy gap to optimal is no larger than LRU's.
    Rng rng(77);
    const PowerModel pm;
    double opg_gap = 0, lru_gap = 0;
    for (int trial = 0; trial < 15; ++trial) {
        std::vector<BlockAccess> accs;
        Time t = 0;
        for (std::size_t i = 0; i < 16; ++i) {
            t += rng.chance(0.3) ? rng.uniform(20.0, 60.0)
                                 : rng.uniform(0.1, 2.0);
            accs.push_back({t, BlockId{0, rng.below(5)}, false, i});
        }
        const SchedulePricing cfg = pricing(pm, t + 50.0);
        const auto opt = optimalEnergy(accs, 3, cfg);
        OpgPolicy opg(pm, DpmKind::Oracle, 0);
        LruPolicy lru;
        opg_gap += policyScheduleEnergy(accs, 3, opg, cfg) - opt.energy;
        lru_gap += policyScheduleEnergy(accs, 3, lru, cfg) - opt.energy;
    }
    EXPECT_LE(opg_gap, lru_gap + 1e-6);
}

TEST(Optimal, RejectsBadInputs)
{
    const PowerModel pm;
    SchedulePricing cfg = pricing(pm, 0.5);
    const auto accs = stream({{1, 1}});
    EXPECT_ANY_THROW(optimalEnergy(accs, 1, cfg)); // horizon too small
    cfg.horizon = 10.0;
    EXPECT_ANY_THROW(optimalEnergy(accs, 0, cfg)); // zero capacity
}

} // namespace
} // namespace pacache
