/**
 * @file
 * Sequential prefetching (the paper's future-work extension): on a
 * read miss the fetch is extended over following non-resident blocks
 * in the same disk request.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

/** Sequential scan: disk 0, blocks 0..n-1, one per 30 s. */
Trace
sequentialTrace(int n, Time gap = 30.0)
{
    Trace t;
    for (int i = 0; i < n; ++i)
        t.append({1.0 + gap * i, 0, static_cast<BlockNum>(i), 1,
                  false});
    return t;
}

TEST(Prefetch, TurnsSequentialMissesIntoHits)
{
    const Trace t = sequentialTrace(64);
    ExperimentConfig cfg;
    cfg.cacheBlocks = 256;
    cfg.storage.prefetchBlocks = 7;
    const auto r = runExperiment(t, cfg);
    // One fetch covers 8 blocks: 8 demand misses instead of 64.
    EXPECT_EQ(r.cache.misses, 8u);
    EXPECT_EQ(r.cache.hits, 56u);
    EXPECT_EQ(r.prefetchedBlocks, 56u);
    uint64_t accesses = 0;
    for (uint64_t a : r.diskAccesses)
        accesses += a;
    EXPECT_EQ(accesses, 8u);
}

TEST(Prefetch, SavesEnergyOnSequentialScanWithSleepyGaps)
{
    const Trace t = sequentialTrace(64);
    ExperimentConfig cfg;
    cfg.cacheBlocks = 256;

    cfg.storage.prefetchBlocks = 0;
    const auto plain = runExperiment(t, cfg);
    cfg.storage.prefetchBlocks = 15;
    const auto pf = runExperiment(t, cfg);

    // 30 s inter-arrival: without prefetch the disk bounces through
    // NAP modes for every block; with degree 15 it wakes 4x total.
    EXPECT_LT(pf.totalEnergy, plain.totalEnergy);
    EXPECT_LT(pf.energy.spinUps, plain.energy.spinUps);
    EXPECT_LT(pf.responses.mean(), plain.responses.mean());
}

TEST(Prefetch, StopsAtResidentBlocks)
{
    Trace t;
    t.append({1.0, 0, 5, 1, false});  // miss; prefetches 6..13
    t.append({2.0, 0, 3, 1, false});  // miss; prefetches 4, stops at 5
    ExperimentConfig cfg;
    cfg.cacheBlocks = 64;
    cfg.storage.prefetchBlocks = 8;
    const auto r = runExperiment(t, cfg);
    // 8 from the first access, then only block 4 before the resident
    // block 5 stops the run.
    EXPECT_EQ(r.prefetchedBlocks, 9u);
}

TEST(Prefetch, NoOpAtDegreeZero)
{
    const Trace t = sequentialTrace(16);
    ExperimentConfig cfg;
    cfg.cacheBlocks = 64;
    const auto r = runExperiment(t, cfg);
    EXPECT_EQ(r.prefetchedBlocks, 0u);
    EXPECT_EQ(r.cache.misses, 16u);
}

TEST(Prefetch, RejectedForOfflinePolicies)
{
    const Trace t = sequentialTrace(8);
    ExperimentConfig cfg;
    cfg.cacheBlocks = 64;
    cfg.storage.prefetchBlocks = 4;
    for (PolicyKind k : {PolicyKind::Belady, PolicyKind::OPG}) {
        cfg.policy = k;
        EXPECT_ANY_THROW(runExperiment(t, cfg)) << policyKindName(k);
    }
}

TEST(Prefetch, PrefetchedVictimsAreHandled)
{
    // Tiny cache: prefetched blocks evict each other without tripping
    // any invariant.
    const Trace t = sequentialTrace(64, 1.0);
    ExperimentConfig cfg;
    cfg.cacheBlocks = 4;
    cfg.storage.prefetchBlocks = 8;
    const auto r = runExperiment(t, cfg);
    EXPECT_GT(r.cache.evictions, 0u);
    EXPECT_EQ(r.responses.count(), 64u);
}

TEST(Prefetch, WorksUnderWriteBackWithDirtyVictims)
{
    Trace t;
    for (int i = 0; i < 8; ++i)
        t.append({1.0 + i, 0, static_cast<BlockNum>(i), 1, true});
    for (int i = 0; i < 32; ++i)
        t.append({20.0 + i, 1, static_cast<BlockNum>(100 + i), 1,
                  false});
    ExperimentConfig cfg;
    cfg.cacheBlocks = 8; // reads + prefetches evict the dirty blocks
    cfg.storage.prefetchBlocks = 4;
    const auto r = runExperiment(t, cfg);
    // All dirty blocks were written back on eviction.
    EXPECT_GT(r.diskAccesses[0], 0u);
    EXPECT_EQ(r.responses.count(), 40u);
}

} // namespace
} // namespace pacache
