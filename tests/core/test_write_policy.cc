#include <gtest/gtest.h>

#include "core/write_policy.hh"

namespace pacache
{
namespace
{

TEST(WritePolicyNames, AllFourNamed)
{
    EXPECT_STREQ(writePolicyName(WritePolicy::WriteThrough), "WT");
    EXPECT_STREQ(writePolicyName(WritePolicy::WriteBack), "WB");
    EXPECT_STREQ(writePolicyName(WritePolicy::WriteBackEagerUpdate),
                 "WBEU");
    EXPECT_STREQ(
        writePolicyName(WritePolicy::WriteThroughDeferredUpdate),
        "WTDU");
}

} // namespace
} // namespace pacache
