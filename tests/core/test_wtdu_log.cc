#include <gtest/gtest.h>

#include "core/wtdu_log.hh"

namespace pacache
{
namespace
{

TEST(WtduLogTest, AppendAndRecover)
{
    WtduLog log(2, 8);
    EXPECT_TRUE(log.append(0, 100, 1));
    EXPECT_TRUE(log.append(0, 101, 2));
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 2u);
    EXPECT_EQ(live[0].block, 100u);
    EXPECT_EQ(live[0].version, 1u);
    EXPECT_EQ(live[1].block, 101u);
}

TEST(WtduLogTest, RegionsAreIndependent)
{
    WtduLog log(3, 4);
    log.append(0, 1, 1);
    log.append(2, 2, 2);
    EXPECT_EQ(log.used(0), 1u);
    EXPECT_EQ(log.used(1), 0u);
    EXPECT_EQ(log.used(2), 1u);
    EXPECT_TRUE(log.recover(1).empty());
}

TEST(WtduLogTest, FullRegionRejectsAppend)
{
    WtduLog log(1, 2);
    EXPECT_TRUE(log.append(0, 1, 1));
    EXPECT_TRUE(log.append(0, 2, 2));
    EXPECT_TRUE(log.full(0));
    EXPECT_FALSE(log.append(0, 3, 3));
}

TEST(WtduLogTest, RetireMakesEntriesStale)
{
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    EXPECT_EQ(log.used(0), 0u);
    EXPECT_TRUE(log.recover(0).empty()); // nothing to replay
    EXPECT_EQ(log.timestamp(0), 1u);
}

TEST(WtduLogTest, NewGenerationOverwritesSlots)
{
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    log.append(0, 7, 3);
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].block, 7u);
    EXPECT_EQ(live[0].version, 3u);
}

TEST(WtduLogTest, PartialOverwriteLeavesOnlyCurrentGeneration)
{
    // Crash after a partial second generation: stale tail entries of
    // generation 0 physically remain but must not be replayed.
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.append(0, 3, 3);
    log.retire(0);
    log.append(0, 9, 4); // overwrites slot 0 only
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].block, 9u);
}

TEST(WtduLogTest, TimestampsPerRegion)
{
    WtduLog log(2, 4);
    log.append(0, 1, 1);
    log.retire(0);
    EXPECT_EQ(log.timestamp(0), 1u);
    EXPECT_EQ(log.timestamp(1), 0u);
}

TEST(WtduLogTest, CountsAppends)
{
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    log.append(0, 3, 3);
    EXPECT_EQ(log.appends(), 3u);
}

TEST(WtduLogTest, OutOfRangeRegionPanics)
{
    WtduLog log(1, 4);
    EXPECT_ANY_THROW(log.append(5, 1, 1));
    EXPECT_ANY_THROW(log.recover(5));
}

} // namespace
} // namespace pacache
