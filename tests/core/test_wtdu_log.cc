#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/fault.hh"
#include "core/wtdu_log.hh"

namespace pacache
{
namespace
{

/** Throws at the Nth hit of one crash site; counts every hit. */
struct SiteInjector : FaultInjector
{
    CrashSite target;
    uint64_t fireAt;
    uint64_t hits = 0;

    SiteInjector(CrashSite site, uint64_t occurrence)
        : target(site), fireAt(occurrence)
    {
    }

    void crashPoint(CrashSite site, DiskId disk) override
    {
        if (site != target)
            return;
        if (hits++ == fireAt)
            throw CrashException(site, disk);
    }
};

TEST(WtduLogTest, AppendAndRecover)
{
    WtduLog log(2, 8);
    EXPECT_TRUE(log.append(0, 100, 1));
    EXPECT_TRUE(log.append(0, 101, 2));
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 2u);
    EXPECT_EQ(live[0].block, 100u);
    EXPECT_EQ(live[0].version, 1u);
    EXPECT_EQ(live[1].block, 101u);
}

TEST(WtduLogTest, RegionsAreIndependent)
{
    WtduLog log(3, 4);
    log.append(0, 1, 1);
    log.append(2, 2, 2);
    EXPECT_EQ(log.used(0), 1u);
    EXPECT_EQ(log.used(1), 0u);
    EXPECT_EQ(log.used(2), 1u);
    EXPECT_TRUE(log.recover(1).empty());
}

TEST(WtduLogTest, FullRegionRejectsAppend)
{
    WtduLog log(1, 2);
    EXPECT_TRUE(log.append(0, 1, 1));
    EXPECT_TRUE(log.append(0, 2, 2));
    EXPECT_TRUE(log.full(0));
    EXPECT_FALSE(log.append(0, 3, 3));
}

TEST(WtduLogTest, RetireMakesEntriesStale)
{
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    EXPECT_EQ(log.used(0), 0u);
    EXPECT_TRUE(log.recover(0).empty()); // nothing to replay
    EXPECT_EQ(log.timestamp(0), 1u);
}

TEST(WtduLogTest, NewGenerationOverwritesSlots)
{
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    log.append(0, 7, 3);
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].block, 7u);
    EXPECT_EQ(live[0].version, 3u);
}

TEST(WtduLogTest, PartialOverwriteLeavesOnlyCurrentGeneration)
{
    // Crash after a partial second generation: stale tail entries of
    // generation 0 physically remain but must not be replayed.
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.append(0, 3, 3);
    log.retire(0);
    log.append(0, 9, 4); // overwrites slot 0 only
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].block, 9u);
}

TEST(WtduLogTest, TimestampsPerRegion)
{
    WtduLog log(2, 4);
    log.append(0, 1, 1);
    log.retire(0);
    EXPECT_EQ(log.timestamp(0), 1u);
    EXPECT_EQ(log.timestamp(1), 0u);
}

TEST(WtduLogTest, CountsAppends)
{
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    log.append(0, 3, 3);
    EXPECT_EQ(log.appends(), 3u);
}

TEST(WtduLogTest, EmptyAndNeverRetiredRegionRecovery)
{
    // A region that never saw an append recovers to nothing, and one
    // that was appended to but never retired recovers everything —
    // the no-retire case is exactly the first generation, where every
    // slot carries the initial stamp.
    WtduLog log(2, 4);
    EXPECT_TRUE(log.recover(0).empty());
    const WtduLog::ScanStats empty = log.scan(0);
    EXPECT_EQ(empty.live, 0u);
    EXPECT_EQ(empty.stale, 0u);
    EXPECT_EQ(empty.torn, 0u);

    log.append(1, 10, 1);
    log.append(1, 11, 2);
    const auto live = log.recover(1);
    ASSERT_EQ(live.size(), 2u);
    EXPECT_EQ(live[0].version, 1u);
    EXPECT_EQ(live[1].version, 2u);
    EXPECT_EQ(log.timestamp(1), 0u);
}

TEST(WtduLogTest, RetireIncrementsStampAndStalenessFollows)
{
    // Each retire bumps the stamp by exactly one; entries are live
    // iff stamped with the *current* value, across generations.
    WtduLog log(1, 4);
    for (uint64_t gen = 0; gen < 3; ++gen) {
        EXPECT_EQ(log.timestamp(0), gen);
        log.append(0, 100 + gen, gen + 1);
        ASSERT_EQ(log.recover(0).size(), 1u);
        EXPECT_EQ(log.recover(0)[0].stamp, gen);
        log.retire(0);
        EXPECT_EQ(log.timestamp(0), gen + 1);
        EXPECT_TRUE(log.recover(0).empty());
        // The slot physically remains, just stale.
        EXPECT_EQ(log.scan(0).stale, 1u);
    }
}

TEST(WtduLogTest, StampWraparound)
{
    // A region born at the maximum stamp wraps to 0 on retire; the
    // pre-wrap entries (stamped UINT64_MAX) must read as stale, not
    // as a future generation.
    WtduLog log(1, 4, UINT64_MAX);
    EXPECT_EQ(log.timestamp(0), UINT64_MAX);
    log.append(0, 1, 1);
    log.append(0, 2, 2);
    log.retire(0);
    EXPECT_EQ(log.timestamp(0), 0u);
    EXPECT_TRUE(log.recover(0).empty());
    EXPECT_EQ(log.scan(0).stale, 2u);
    log.append(0, 3, 3);
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].block, 3u);
    EXPECT_EQ(live[0].stamp, 0u);
    // One pre-wrap entry survives physically beyond the free pointer.
    EXPECT_EQ(log.scan(0).stale, 1u);
}

TEST(WtduLogTest, TornAppendIsSkippedByRecovery)
{
    // Power fails mid-append: the slot is consumed but its checksum
    // never completes, so scans count it torn and recovery skips it
    // like a bad-CRC record.
    WtduLog log(1, 4);
    log.append(0, 1, 1);
    SiteInjector inj(CrashSite::LogAppendTorn, 0);
    log.setFaultInjector(&inj);
    EXPECT_THROW(log.append(0, 2, 2), CrashException);
    log.setFaultInjector(nullptr);
    const WtduLog::ScanStats stats = log.scan(0);
    EXPECT_EQ(stats.live, 1u);
    EXPECT_EQ(stats.torn, 1u);
    const auto live = log.recover(0);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].block, 1u);
}

TEST(WtduLogTest, RecoverAllReplaysInDiskOrderAndRetires)
{
    WtduLog log(3, 4);
    log.append(2, 30, 3);
    log.append(0, 10, 1);
    log.append(0, 11, 2);
    std::vector<std::pair<DiskId, uint64_t>> replayed;
    log.recoverAll([&](DiskId d, const WtduLog::Entry &e) {
        replayed.emplace_back(d, e.version);
    });
    ASSERT_EQ(replayed.size(), 3u);
    EXPECT_EQ(replayed[0], (std::pair<DiskId, uint64_t>{0, 1}));
    EXPECT_EQ(replayed[1], (std::pair<DiskId, uint64_t>{0, 2}));
    EXPECT_EQ(replayed[2], (std::pair<DiskId, uint64_t>{2, 3}));
    // Every region retired: a second pass finds nothing.
    for (DiskId d = 0; d < 3; ++d)
        EXPECT_TRUE(log.recover(d).empty());
    std::size_t second = 0;
    log.recoverAll([&](DiskId, const WtduLog::Entry &) { ++second; });
    EXPECT_EQ(second, 0u);
}

TEST(WtduLogTest, OutOfRangeRegionPanics)
{
    WtduLog log(1, 4);
    EXPECT_ANY_THROW(log.append(5, 1, 1));
    EXPECT_ANY_THROW(log.recover(5));
}

} // namespace
} // namespace pacache
