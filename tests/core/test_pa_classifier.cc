#include <gtest/gtest.h>

#include "core/pa_classifier.hh"

namespace pacache
{
namespace
{

PaParams
fastParams()
{
    PaParams p;
    p.epochLength = 100.0;
    p.coldMissThreshold = 0.5;
    p.cumulativeProb = 0.8;
    p.intervalThreshold = 10.0;
    p.minEpochSamples = 2;
    return p;
}

TEST(PaClassifierTest, StartsAllRegular)
{
    PaClassifier c(4, fastParams());
    for (DiskId d = 0; d < 4; ++d)
        EXPECT_FALSE(c.isPriority(d));
}

TEST(PaClassifierTest, WarmLongIntervalDiskBecomesPriority)
{
    PaClassifier c(2, fastParams());
    // Disk 0: warm accesses (same block), disk accesses 30 s apart.
    const BlockId blk{0, 7};
    Time t = 0;
    for (int i = 0; i < 4; ++i) {
        c.onRequest(0, blk, t);
        c.onDiskAccess(0, t);
        t += 30.0;
    }
    c.onRequest(0, blk, 130.0); // crosses the epoch boundary
    EXPECT_TRUE(c.isPriority(0));
    EXPECT_LE(c.lastColdMissFraction(0), 0.5);
    EXPECT_GE(c.lastIntervalQuantile(0), 10.0);
}

TEST(PaClassifierTest, ColdMissDominatedDiskStaysRegular)
{
    PaClassifier c(1, fastParams());
    // Every access is a brand-new block: 100% cold.
    Time t = 0;
    for (BlockNum n = 0; n < 10; ++n) {
        c.onRequest(0, BlockId{0, n}, t);
        c.onDiskAccess(0, t);
        t += 30.0;
    }
    c.onRequest(0, BlockId{0, 999}, 400.0);
    EXPECT_FALSE(c.isPriority(0));
    EXPECT_GT(c.lastColdMissFraction(0), 0.5);
}

TEST(PaClassifierTest, ShortIntervalDiskStaysRegular)
{
    PaClassifier c(1, fastParams());
    const BlockId blk{0, 7};
    Time t = 0;
    for (int i = 0; i < 50; ++i) {
        c.onRequest(0, blk, t);
        c.onDiskAccess(0, t);
        t += 2.0; // intervals far below the 10 s threshold
    }
    c.onRequest(0, blk, 130.0);
    EXPECT_FALSE(c.isPriority(0));
    EXPECT_LT(c.lastIntervalQuantile(0), 10.0);
}

TEST(PaClassifierTest, FullyAbsorbedWarmDiskIsPriority)
{
    // Requests arrive but the cache absorbs them all (no disk
    // accesses): a warm disk like this is worth protecting.
    PaClassifier c(1, fastParams());
    const BlockId blk{0, 3};
    for (int i = 0; i < 10; ++i)
        c.onRequest(0, blk, 5.0 * i);
    c.onRequest(0, blk, 130.0);
    EXPECT_TRUE(c.isPriority(0));
}

TEST(PaClassifierTest, TooFewSamplesKeepsPreviousClass)
{
    PaClassifier c(1, fastParams());
    // Epoch 1: solidly priority.
    const BlockId blk{0, 7};
    Time t = 0;
    for (int i = 0; i < 4; ++i) {
        c.onRequest(0, blk, t);
        c.onDiskAccess(0, t);
        t += 30.0;
    }
    c.onRequest(0, blk, 101.0);
    ASSERT_TRUE(c.isPriority(0));
    // Epoch 2: a single access — too little evidence to reclassify.
    c.onRequest(0, blk, 205.0);
    EXPECT_TRUE(c.isPriority(0));
}

TEST(PaClassifierTest, ReclassifiesWhenWorkloadShifts)
{
    PaClassifier c(1, fastParams());
    const BlockId blk{0, 7};
    // Epoch 1: priority-worthy.
    Time t = 0;
    for (int i = 0; i < 4; ++i) {
        c.onRequest(0, blk, t);
        c.onDiskAccess(0, t);
        t += 30.0;
    }
    c.onRequest(0, blk, 100.0);
    ASSERT_TRUE(c.isPriority(0));
    // Epoch 2: dense disk traffic (2 s gaps).
    for (int i = 0; i < 40; ++i) {
        c.onRequest(0, blk, 100.0 + 2.0 * i);
        c.onDiskAccess(0, 100.0 + 2.0 * i);
    }
    c.onRequest(0, blk, 230.0);
    EXPECT_FALSE(c.isPriority(0));
}

TEST(PaClassifierTest, EpochsRollEvenAcrossLongGaps)
{
    PaClassifier c(1, fastParams());
    c.onRequest(0, BlockId{0, 1}, 0.0);
    c.onRequest(0, BlockId{0, 1}, 1000.0); // 10 epochs later
    EXPECT_GE(c.epochsCompleted(), 10u);
}

TEST(PaClassifierTest, DisksClassifiedIndependently)
{
    PaClassifier c(2, fastParams());
    const BlockId warm{0, 7};
    Time t = 0;
    for (int i = 0; i < 4; ++i) {
        c.onRequest(0, warm, t);
        c.onDiskAccess(0, t);
        // Disk 1: all cold, short gaps.
        c.onRequest(1, BlockId{1, static_cast<BlockNum>(i * 2)}, t);
        c.onDiskAccess(1, t);
        c.onRequest(1, BlockId{1, static_cast<BlockNum>(i * 2 + 1)},
                    t + 1.0);
        c.onDiskAccess(1, t + 1.0);
        t += 30.0;
    }
    c.onRequest(0, warm, 130.0);
    EXPECT_TRUE(c.isPriority(0));
    EXPECT_FALSE(c.isPriority(1));
}

} // namespace
} // namespace pacache
