#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/opg.hh"

namespace pacache
{
namespace
{

std::vector<BlockAccess>
stream(std::initializer_list<std::pair<Time, BlockNum>> entries,
       DiskId disk = 0)
{
    std::vector<BlockAccess> out;
    for (const auto &[t, n] : entries)
        out.push_back({t, BlockId{disk, n}, false, out.size()});
    return out;
}

TEST(Opg, ColdMissesSeedDeterministicSet)
{
    const auto accs = stream({{0, 1}, {1, 2}, {2, 1}, {3, 3}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle);
    p.prepare(accs);
    // Cold misses: first refs of 1, 2, 3.
    EXPECT_EQ(p.deterministicMissCount(0), 3u);
}

TEST(Opg, MissRemovesItselfFromSet)
{
    const auto accs = stream({{0, 1}, {1, 2}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle);
    Cache c(4, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    EXPECT_EQ(p.deterministicMissCount(0), 1u);
    c.access(accs[1].block, 1, 1);
    EXPECT_EQ(p.deterministicMissCount(0), 0u);
}

TEST(Opg, EvictionAddsNextReferenceToSet)
{
    const auto accs =
        stream({{0, 1}, {1, 2}, {2, 3}, {3, 1}, {4, 2}, {5, 3}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle);
    Cache c(2, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    c.access(accs[1].block, 1, 1);
    const std::size_t before = p.deterministicMissCount(0);
    c.access(accs[2].block, 2, 2); // evicts one of {1,2}
    // Its future re-reference becomes deterministic: -1 for the
    // serviced miss, +1 for the eviction.
    EXPECT_EQ(p.deterministicMissCount(0), before);
}

TEST(Opg, PenaltyOfNeverReusedBlockIsZeroFloored)
{
    const auto accs = stream({{0, 1}, {1, 2}, {100, 2}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, /*theta=*/0);
    Cache c(4, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    EXPECT_DOUBLE_EQ(p.penaltyOf(accs[0].block), 0.0);
}

TEST(Opg, PrefersEvictingNeverReusedBlock)
{
    // Block 9 never recurs; 1 recurs amid an otherwise-long idle gap,
    // so keeping it saves energy.
    const auto accs =
        stream({{0, 9}, {1, 1}, {2, 8}, {200, 1}, {400, 8}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, 0);
    Cache c(2, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    c.access(accs[1].block, 1, 1);
    const auto r = c.access(accs[2].block, 2, 2);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, (BlockId{0, 9}));
}

TEST(Opg, PenaltyIsSubadditivityGap)
{
    // One resident block whose next access at t=100 sits between
    // deterministic misses at t=0 (its own insertion... none) — use
    // an explicit construction: cold misses at 50 and 150 around a
    // re-reference at 100.
    const auto accs = stream({{0, 1}, {50, 2}, {100, 1}, {150, 3}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, 0);
    Cache c(4, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0); // resident 1, next at idx 2 (t=100)
    // Leader: cold miss of 2 at t=50; follower: cold miss of 3 at 150.
    const Energy expect =
        pm.envelope(50.0) + pm.envelope(50.0) - pm.envelope(100.0);
    EXPECT_NEAR(p.penaltyOf(accs[0].block), expect, 1e-9);
}

TEST(Opg, PracticalPricingDiffersFromOracle)
{
    const auto accs = stream({{0, 1}, {50, 2}, {100, 1}, {150, 3}});
    const PowerModel pm;
    OpgPolicy oracle(pm, DpmKind::Oracle, 0);
    OpgPolicy practical(pm, DpmKind::Practical, 0);
    Cache c1(4, oracle), c2(4, practical);
    oracle.prepare(accs);
    practical.prepare(accs);
    c1.access(accs[0].block, 0, 0);
    c2.access(accs[0].block, 0, 0);
    const Energy expect = pm.practicalEnergy(50.0) +
                          pm.practicalEnergy(50.0) -
                          pm.practicalEnergy(100.0);
    EXPECT_NEAR(practical.penaltyOf(accs[0].block), expect, 1e-9);
    EXPECT_NE(practical.penaltyOf(accs[0].block),
              oracle.penaltyOf(accs[0].block));
}

TEST(Opg, ThetaRoundsSmallPenaltiesUp)
{
    const auto accs = stream({{0, 1}, {50, 2}, {100, 1}, {150, 3}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, /*theta=*/1e6);
    Cache c(4, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    EXPECT_DOUBLE_EQ(p.penaltyOf(accs[0].block), 1e6);
}

TEST(Opg, HugeThetaDegradesToBelady)
{
    // With all penalties rounded to theta, ties break by furthest
    // next access — Belady's rule.
    const auto accs =
        stream({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 2}, {6, 3}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, 1e9);
    Cache c(3, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    c.access(accs[1].block, 1, 1);
    c.access(accs[2].block, 2, 2);
    const auto r = c.access(accs[3].block, 3, 3);
    // Belady would evict 3 (next use furthest among 1@4, 2@5, 3@6)...
    // except 4 itself is never reused; of residents {1,2,3} furthest
    // is 3.
    EXPECT_EQ(r.victim, (BlockId{0, 3}));
}

TEST(Opg, PenaltiesArePerDisk)
{
    std::vector<BlockAccess> accs;
    accs.push_back({0.0, BlockId{0, 1}, false, 0});
    accs.push_back({1.0, BlockId{1, 1}, false, 1});
    accs.push_back({100.0, BlockId{0, 1}, false, 2});
    accs.push_back({100.0, BlockId{1, 1}, false, 3});
    accs.push_back({101.0, BlockId{1, 2}, false, 4});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, 0);
    Cache c(4, p);
    p.prepare(accs);
    EXPECT_EQ(p.deterministicMissCount(0), 1u);
    EXPECT_EQ(p.deterministicMissCount(1), 2u);
    c.access(accs[0].block, 0.0, 0);
    c.access(accs[1].block, 1.0, 1);
    // Disk 1 has a deterministic miss at t=101 right after block
    // (1,1)'s next access; disk 0 has none after (0,1)'s. The disk-1
    // block is therefore cheaper to evict.
    EXPECT_LT(p.penaltyOf(BlockId{1, 1}), p.penaltyOf(BlockId{0, 1}));
}

TEST(Opg, HitUpdatesNextUse)
{
    const auto accs = stream({{0, 1}, {10, 1}, {500, 1}, {501, 2}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, 0);
    Cache c(4, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    const Energy before = p.penaltyOf(accs[0].block);
    c.access(accs[1].block, 10, 1); // hit; next use now at t=500
    const Energy after = p.penaltyOf(accs[1].block);
    // Different bracket -> different penalty (both finite).
    EXPECT_NE(before, after);
}

TEST(Opg, GapRescanStaysConsistentAtNonAssociativeTimes)
{
    // Regression: the gap rescan must price the whole-gap term per
    // block as E((t_x - t_lo) + (t_hi - t_x)), never the hoisted
    // E(t_hi - t_lo). FP addition is not associative, so the two can
    // round one ulp apart, and a repriced penalty then disagrees with
    // computePenalty's from-scratch form (and the reference policy).
    const Time tLo = 4.0;
    const Time tX = 7.0;
    const Time tHi = 1e16 + 6.0;
    // Chosen so the two summation orders round to different doubles.
    ASSERT_NE((tX - tLo) + (tHi - tX), tHi - tLo);

    // Capacity-2 walk: the miss on block 3 evicts block 2 (its next
    // use sits two seconds before block 5's cold miss, so its penalty
    // is the smallest), and that next use (idx 5) joining S rescans
    // the bounded gap (idx 3 @ tLo, idx 5 @ tHi) containing block 1's
    // next use at tX.
    const auto accs = stream({{0, 1},
                              {1, 2},
                              {2, 3},
                              {tLo, 4},
                              {tX, 1},
                              {tHi, 2},
                              {1e16 + 8, 5}});
    for (const DpmKind kind : {DpmKind::Oracle, DpmKind::Practical}) {
        const PowerModel pm;
        OpgPolicy p(pm, kind, 0);
        Cache c(2, p);
        p.prepare(accs);
        c.access(accs[0].block, accs[0].time, 0);
        c.access(accs[1].block, accs[1].time, 1);
        const CacheResult r = c.access(accs[2].block, accs[2].time, 2);
        ASSERT_TRUE(r.evicted);
        ASSERT_EQ(r.victim.block, 2u); // the rescan trigger
        p.validateInternalState(/*full=*/true);
        for (std::size_t i = 3; i < accs.size(); ++i) {
            c.access(accs[i].block, accs[i].time, i);
            p.validateInternalState(/*full=*/true);
        }
    }
}

TEST(Opg, RemoveBehavesLikeEviction)
{
    const auto accs = stream({{0, 1}, {50, 1}, {60, 2}});
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Oracle, 0);
    Cache c(4, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    const std::size_t before = p.deterministicMissCount(0);
    p.onRemove(accs[0].block);
    EXPECT_EQ(p.deterministicMissCount(0), before + 1);
}

} // namespace
} // namespace pacache
