#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/belady.hh"
#include "cache/future.hh"
#include "cache/lru.hh"
#include "core/storage_system.hh"
#include "disk/dpm.hh"

namespace pacache
{
namespace
{

/** Everything needed to run a StorageSystem by hand. */
struct Harness
{
    PowerModel pm;
    ServiceModel sm;
    EventQueue eq;
    AlwaysOnDpm alwaysOn;
    PracticalDpm practical;
    LruPolicy policy;
    Cache cache;
    DiskArray disks;
    std::unique_ptr<Disk> logDisk;

    Harness(std::size_t cache_blocks, std::size_t num_disks,
            bool use_practical, bool with_log)
        : pm(), sm(pm.spec()), practical(pm), policy(),
          cache(cache_blocks, policy),
          disks(num_disks, eq, pm, sm,
                use_practical ? static_cast<Dpm &>(practical)
                              : static_cast<Dpm &>(alwaysOn))
    {
        if (with_log) {
            logDisk = std::make_unique<Disk>(
                static_cast<DiskId>(num_disks), eq, pm, sm, alwaysOn);
        }
    }
};

Trace
rwTrace()
{
    Trace t;
    t.append({1.0, 0, 10, 1, false}); // read miss
    t.append({2.0, 0, 10, 1, true});  // write hit
    t.append({3.0, 0, 11, 1, true});  // write miss
    t.append({4.0, 0, 10, 1, false}); // read hit
    return t;
}

TEST(StorageSystem, WriteThroughWritesEveryWrite)
{
    Harness h(64, 1, false, false);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThrough;
    const Trace t = rwTrace();
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    // Disk sees: 1 read miss + 2 writes.
    EXPECT_EQ(sys.diskAccesses()[0], 3u);
    EXPECT_EQ(h.cache.stats().hits, 2u);
    EXPECT_EQ(h.cache.dirtyCount(0), 0u);
}

TEST(StorageSystem, WriteBackDefersUntilEviction)
{
    Harness h(64, 1, false, false);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteBack;
    const Trace t = rwTrace();
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    // Disk sees only the read miss; both writes stay dirty in cache.
    EXPECT_EQ(sys.diskAccesses()[0], 1u);
    EXPECT_EQ(h.cache.dirtyCount(0), 2u);
}

TEST(StorageSystem, WriteBackFlushesDirtyVictim)
{
    Harness h(2, 1, false, false); // tiny cache forces evictions
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteBack;
    Trace t;
    t.append({1.0, 0, 1, 1, true});  // dirty block 1
    t.append({2.0, 0, 2, 1, true});  // dirty block 2
    t.append({3.0, 0, 3, 1, false}); // evicts 1 -> write-back + read
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    EXPECT_EQ(sys.diskAccesses()[0], 2u); // victim write + read miss
}

TEST(StorageSystem, WriteBackRespondsAtCacheSpeed)
{
    Harness h(64, 1, false, false);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteBack;
    Trace t;
    t.append({1.0, 0, 1, 1, true});
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    EXPECT_EQ(sys.responses().count(), 1u);
    EXPECT_NEAR(sys.responses().mean(), cfg.hitLatency, 1e-12);
}

TEST(StorageSystem, WbeuFlushesOnActivation)
{
    Harness h(64, 2, true, false); // practical DPM so disks sleep
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteBackEagerUpdate;
    Trace t;
    t.append({1.0, 0, 1, 1, true});    // dirty block on disk 0
    t.append({2.0, 0, 2, 1, true});    // another dirty block
    t.append({300.0, 0, 50, 1, false}); // read miss wakes disk 0
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    // Activation flush: dirty blocks written once disk 0 wakes.
    EXPECT_EQ(h.cache.dirtyCount(0), 0u);
    // Disk saw the read plus the flush writes (coalesced 1..2 run).
    EXPECT_GE(sys.diskAccesses()[0], 2u);
}

TEST(StorageSystem, WbeuForcesFlushAtDirtyCap)
{
    Harness h(64, 1, true, false);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteBackEagerUpdate;
    cfg.wbeuMaxDirtyPerDisk = 3;
    Trace t;
    for (int i = 0; i < 3; ++i)
        t.append({1.0 + i, 0, static_cast<BlockNum>(10 * i), 1, true});
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    EXPECT_EQ(h.cache.dirtyCount(0), 0u);
    EXPECT_GE(sys.diskAccesses()[0], 1u); // the forced flush
}

TEST(StorageSystem, WtduRequiresLogDisk)
{
    Harness h(64, 1, true, false);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    const Trace t = rwTrace();
    EXPECT_ANY_THROW(
        StorageSystem(t, h.eq, h.cache, h.disks, cfg, nullptr, nullptr));
}

TEST(StorageSystem, WtduLogsWritesToSleepingDisk)
{
    Harness h(64, 1, true, true);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    Trace t;
    t.append({1.0, 0, 1, 1, false});   // spin the disk's timeline up
    t.append({300.0, 0, 5, 1, true});  // disk asleep: goes to the log
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    EXPECT_EQ(sys.logWrites(), 1u);
    ASSERT_NE(sys.wtduLog(), nullptr);
    // The write never reached the data disk (no wake-up read came).
    EXPECT_EQ(sys.diskAccesses()[0], 1u);
    EXPECT_EQ(sys.wtduLog()->used(0), 1u);
    EXPECT_EQ(h.logDisk->energy().requests, 1u);
}

TEST(StorageSystem, WtduWritesDirectlyToActiveDisk)
{
    Harness h(64, 1, true, true);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    t.append({1.5, 0, 5, 1, true}); // disk still at full speed
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    EXPECT_EQ(sys.logWrites(), 0u);
    EXPECT_EQ(sys.diskAccesses()[0], 2u);
}

TEST(StorageSystem, WtduFlushesLogOnActivation)
{
    Harness h(64, 1, true, true);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    t.append({300.0, 0, 5, 1, true});   // logged
    t.append({301.0, 0, 6, 1, true});   // logged
    t.append({600.0, 0, 50, 1, false}); // read wakes the disk
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    EXPECT_EQ(sys.logWrites(), 2u);
    // After activation the region is retired and blocks are clean.
    EXPECT_EQ(sys.wtduLog()->used(0), 0u);
    EXPECT_EQ(sys.wtduLog()->timestamp(0), 1u);
    EXPECT_TRUE(h.cache.loggedBlocksOf(0).empty());
    // Data disk: first read + 2 flushed writes (coalesced 5,6) + read.
    EXPECT_GE(sys.diskAccesses()[0], 3u);
}

TEST(StorageSystem, WtduFullRegionForcesFlushAndRetire)
{
    Harness h(64, 1, true, true);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    cfg.wtduRegionBlocks = 2; // tiny region
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    t.append({300.0, 0, 10, 1, true});  // log slot 1
    t.append({301.0, 0, 11, 1, true});  // log slot 2: full
    t.append({302.0, 0, 12, 1, true});  // forces flush + retire
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    // Two-phase retire: the overflowing write is deferred while the
    // flush is in flight and released as a direct write-through once
    // the retire completes, so it never reaches the log.
    EXPECT_EQ(sys.logWrites(), 2u);
    // The overflow retired generation 0 and nothing was appended to
    // the fresh region.
    EXPECT_GE(sys.wtduLog()->timestamp(0), 1u);
    EXPECT_EQ(sys.wtduLog()->used(0), 0u);
    // The flushed blocks and the deferred write reached the data disk.
    EXPECT_GE(sys.diskAccesses()[0], 3u);
}

TEST(StorageSystem, WtduDeferredWriteKeepsOriginalResponseOrigin)
{
    // The deferred write's response time is charged from its original
    // arrival, not from the retire completion that released it: the
    // client has been waiting the whole time.
    Harness h(64, 1, true, true);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    cfg.wtduRegionBlocks = 2;
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    t.append({300.0, 0, 10, 1, true});
    t.append({301.0, 0, 11, 1, true});
    t.append({302.0, 0, 12, 1, true}); // deferred past the retire
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    // Spin-up takes seconds; the deferred write waits for the full
    // flush to become durable before it is even submitted, so its
    // response time dominates the maximum.
    const Time spin_up = h.pm.mode(h.pm.deepestMode()).spinUpTime;
    EXPECT_GE(sys.responses().max(), spin_up);
}

TEST(StorageSystem, WtduLoggedVictimIsPersistedHome)
{
    Harness h(2, 1, true, true); // 2-block cache forces evictions
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    // Disk asleep: two logged writes fill the cache.
    t.append({300.0, 0, 10, 1, true});
    t.append({301.0, 0, 11, 1, true});
    // A third logged write evicts a logged block: its only fresh copy
    // outside the log must be written home.
    t.append({302.0, 0, 12, 1, true});
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    EXPECT_GE(sys.loggedEvictions(), 1u);
    // Home writes happened beyond the initial read.
    EXPECT_GE(sys.diskAccesses()[0], 2u);
}

TEST(StorageSystem, ReadMissResponseIncludesSpinUp)
{
    Harness h(64, 1, true, false);
    StorageConfig cfg;
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    t.append({500.0, 0, 2, 1, false}); // disk in standby by now
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    EXPECT_GT(sys.responses().max(), 10.0); // spin-up dominated
}

TEST(StorageSystem, RunTwicePanics)
{
    Harness h(64, 1, false, false);
    StorageConfig cfg;
    const Trace t = rwTrace();
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg);
    sys.run();
    EXPECT_ANY_THROW(sys.run());
}

TEST(StorageSystem, TotalEnergyIncludesLogServiceOnly)
{
    Harness h(64, 1, true, true);
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    t.append({300.0, 0, 5, 1, true});
    StorageSystem sys(t, h.eq, h.cache, h.disks, cfg, nullptr,
                      h.logDisk.get());
    sys.run();
    const Energy disks_only = h.disks.totalEnergy().total();
    EXPECT_NEAR(sys.totalEnergy(),
                disks_only + h.logDisk->energy().serviceEnergy, 1e-9);
    // The log disk's (large) idle energy is NOT charged.
    EXPECT_LT(sys.totalEnergy(),
              disks_only + h.logDisk->energy().total());
}

TEST(StorageSystem, IncrementalStepFinishMatchesRun)
{
    const Trace t = rwTrace();
    StorageConfig cfg;
    cfg.writePolicy = WritePolicy::WriteBack;

    Harness batch(64, 1, true, false);
    StorageSystem ref(t, batch.eq, batch.cache, batch.disks, cfg);
    ref.run();

    // Driving the same accesses one step() at a time (the serve
    // stripe's mode) must land on identical statistics and energy.
    Harness inc(64, 1, true, false);
    StorageSystem sys(inc.eq, inc.cache, inc.disks, cfg);
    const std::vector<BlockAccess> accesses = expandTrace(t);
    for (std::size_t i = 0; i < accesses.size(); ++i)
        sys.step(accesses[i], i);
    sys.finish(t.endTime());

    EXPECT_EQ(inc.cache.stats().hits, batch.cache.stats().hits);
    EXPECT_EQ(inc.cache.stats().misses, batch.cache.stats().misses);
    EXPECT_EQ(inc.cache.stats().evictions,
              batch.cache.stats().evictions);
    EXPECT_EQ(sys.totalEnergy(), ref.totalEnergy());
    EXPECT_EQ(sys.responses().count(), ref.responses().count());
    EXPECT_EQ(sys.responses().sum(), ref.responses().sum());
}

TEST(StorageSystem, IncrementalRejectsOfflinePolicy)
{
    Harness h(64, 1, false, false);
    StorageConfig cfg;
    BeladyPolicy offline;
    Cache cache(8, offline);
    EXPECT_ANY_THROW(StorageSystem(h.eq, cache, h.disks, cfg));
}

} // namespace
} // namespace pacache
