#include <gtest/gtest.h>

#include "cache/arc.hh"
#include "cache/cache.hh"
#include "core/pa_lru.hh"

namespace pacache
{
namespace
{

/** A classifier driven to a fixed state for testing. */
PaParams
fastParams()
{
    PaParams p;
    p.epochLength = 100.0;
    p.intervalThreshold = 10.0;
    return p;
}

/** Make disk @p d priority by feeding one warm, long-interval epoch. */
void
makePriority(PaClassifier &c, DiskId d)
{
    const BlockId blk{d, 99999};
    Time t = 0;
    for (int i = 0; i < 4; ++i) {
        c.onRequest(d, blk, t);
        c.onDiskAccess(d, t);
        t += 30.0;
    }
    c.onRequest(d, blk, 130.0);
    ASSERT_TRUE(c.isPriority(d));
}

TEST(PaLru, EvictsFromRegularStackFirst)
{
    PaClassifier cls(2, fastParams());
    makePriority(cls, 1);
    PaLruPolicy p(cls);
    Cache c(3, p);
    std::size_t idx = 0;
    c.access(BlockId{1, 10}, 0, idx++); // priority disk
    c.access(BlockId{0, 20}, 0, idx++); // regular disk
    c.access(BlockId{1, 11}, 0, idx++); // priority disk
    const auto r = c.access(BlockId{0, 21}, 0, idx++);
    // Even though (1,10) is the global LRU, the regular block goes.
    EXPECT_EQ(r.victim, (BlockId{0, 20}));
    EXPECT_TRUE(c.contains(BlockId{1, 10}));
}

TEST(PaLru, FallsBackToPriorityStackWhenRegularEmpty)
{
    PaClassifier cls(2, fastParams());
    makePriority(cls, 1);
    PaLruPolicy p(cls);
    Cache c(2, p);
    std::size_t idx = 0;
    c.access(BlockId{1, 1}, 0, idx++);
    c.access(BlockId{1, 2}, 0, idx++);
    const auto r = c.access(BlockId{1, 3}, 0, idx++);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, (BlockId{1, 1})); // LRU of the priority stack
}

TEST(PaLru, WithinStackOrderIsLru)
{
    PaClassifier cls(1, fastParams());
    PaLruPolicy p(cls);
    Cache c(2, p);
    std::size_t idx = 0;
    c.access(BlockId{0, 1}, 0, idx++);
    c.access(BlockId{0, 2}, 0, idx++);
    c.access(BlockId{0, 1}, 0, idx++); // 1 becomes MRU
    const auto r = c.access(BlockId{0, 3}, 0, idx++);
    EXPECT_EQ(r.victim, (BlockId{0, 2}));
}

TEST(PaLru, StackSizesTrackClassification)
{
    PaClassifier cls(2, fastParams());
    makePriority(cls, 1);
    PaLruPolicy p(cls);
    Cache c(8, p);
    std::size_t idx = 0;
    c.access(BlockId{0, 1}, 0, idx++);
    c.access(BlockId{1, 1}, 0, idx++);
    c.access(BlockId{1, 2}, 0, idx++);
    EXPECT_EQ(p.regularSize(), 1u);
    EXPECT_EQ(p.prioritySize(), 2u);
}

TEST(PaLru, HitMigratesAfterReclassification)
{
    // Block inserted while its disk was regular moves to the priority
    // stack when touched after the disk became priority.
    PaClassifier cls(1, fastParams());
    PaLruPolicy p(cls);
    Cache c(4, p);
    std::size_t idx = 0;
    c.access(BlockId{0, 5}, 0, idx++);
    EXPECT_EQ(p.regularSize(), 1u);
    makePriority(cls, 0);
    c.access(BlockId{0, 5}, 0, idx++); // hit migrates
    EXPECT_EQ(p.regularSize(), 0u);
    EXPECT_EQ(p.prioritySize(), 1u);
}

TEST(PaLru, RemoveUnknownPanics)
{
    PaClassifier cls(1, fastParams());
    PaLruPolicy p(cls);
    EXPECT_ANY_THROW(p.onRemove(BlockId{0, 1}));
}

TEST(PaDual, BehavesLikePaLruWithLruBases)
{
    PaClassifier cls(2, fastParams());
    makePriority(cls, 1);
    PaDualPolicy p(cls, std::make_unique<LruPolicy>(),
                   std::make_unique<LruPolicy>(), "PA-LRU(dual)");
    Cache c(3, p);
    std::size_t idx = 0;
    c.access(BlockId{1, 10}, 0, idx++);
    c.access(BlockId{0, 20}, 0, idx++);
    c.access(BlockId{1, 11}, 0, idx++);
    const auto r = c.access(BlockId{0, 21}, 0, idx++);
    EXPECT_EQ(r.victim, (BlockId{0, 20}));
    EXPECT_EQ(std::string(p.name()), "PA-LRU(dual)");
}

TEST(PaDual, WrapsArc)
{
    PaClassifier cls(2, fastParams());
    makePriority(cls, 1);
    PaDualPolicy p(cls, std::make_unique<ArcPolicy>(4),
                   std::make_unique<ArcPolicy>(4), "PA-ARC");
    Cache c(4, p);
    std::size_t idx = 0;
    c.access(BlockId{1, 1}, 0, idx++);
    c.access(BlockId{0, 1}, 0, idx++);
    c.access(BlockId{0, 2}, 0, idx++);
    c.access(BlockId{0, 3}, 0, idx++);
    const auto r = c.access(BlockId{0, 4}, 0, idx++);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim.disk, 0u); // regular side evicted
    EXPECT_TRUE(c.contains(BlockId{1, 1}));
    EXPECT_EQ(p.prioritySize(), 1u);
}

TEST(PaDual, MigratesOnReclassification)
{
    PaClassifier cls(1, fastParams());
    PaDualPolicy p(cls, std::make_unique<LruPolicy>(),
                   std::make_unique<LruPolicy>(), "PA-LRU(dual)");
    Cache c(4, p);
    std::size_t idx = 0;
    c.access(BlockId{0, 5}, 0, idx++);
    EXPECT_EQ(p.regularSize(), 1u);
    makePriority(cls, 0);
    c.access(BlockId{0, 5}, 0, idx++);
    EXPECT_EQ(p.regularSize(), 0u);
    EXPECT_EQ(p.prioritySize(), 1u);
}

} // namespace
} // namespace pacache
