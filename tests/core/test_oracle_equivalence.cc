/**
 * @file
 * Golden equivalence: the indexed-heap/ordered-set fast paths
 * (OpgPolicy, BeladyPolicy) must replay byte-identically to the
 * retained node-based references (ReferenceOpgPolicy with the legacy
 * per-call pricing, ReferenceBeladyPolicy) — same eviction sequence
 * in the same order, same hit/miss/eviction counts, same
 * deterministic-miss trajectories, and exactly equal (==, not
 * near-equal) priced schedule energy. Any divergence means the
 * rewrite changed behavior, not just speed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "cache/belady.hh"
#include "cache/belady_ref.hh"
#include "cache/cache.hh"
#include "core/opg.hh"
#include "core/opg_ref.hh"
#include "core/optimal.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace pacache
{
namespace
{

/** Forwarding wrapper that records the victim sequence. */
class RecordingPolicy : public ReplacementPolicy
{
  public:
    explicit RecordingPolicy(ReplacementPolicy &inner_) : inner(&inner_)
    {
    }

    const char *name() const override { return inner->name(); }

    void
    prepare(const std::vector<BlockAccess> &accesses) override
    {
        inner->prepare(accesses);
    }

    void
    onAccess(const BlockId &block, Time now, std::size_t idx,
             bool hit) override
    {
        inner->onAccess(block, now, idx, hit);
    }

    void
    beforeMiss(const BlockId &block, Time now, std::size_t idx) override
    {
        inner->beforeMiss(block, now, idx);
    }

    void onRemove(const BlockId &block) override
    {
        inner->onRemove(block);
    }

    BlockId
    evict(Time now, std::size_t idx) override
    {
        const BlockId victim = inner->evict(now, idx);
        victims.push_back(victim);
        return victim;
    }

    bool supportsPrefetch() const override
    {
        return inner->supportsPrefetch();
    }
    bool isOffline() const override { return inner->isOffline(); }

    std::vector<BlockId> victims;

  private:
    ReplacementPolicy *inner;
};

struct ReplayResult
{
    std::vector<BlockId> victims;
    CacheStats stats;
    /** deterministicMissCount(0) sampled after every access. */
    std::vector<std::size_t> detMiss0;
};

template <typename Policy>
ReplayResult
replay(Policy &policy, const std::vector<BlockAccess> &accesses,
       std::size_t capacity)
{
    RecordingPolicy rec(policy);
    Cache cache(capacity, rec);
    rec.prepare(accesses);
    ReplayResult out;
    out.detMiss0.reserve(accesses.size());
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        cache.access(accesses[i].block, accesses[i].time, i);
        if constexpr (!std::is_same_v<Policy, BeladyPolicy> &&
                      !std::is_same_v<Policy, ReferenceBeladyPolicy>)
            out.detMiss0.push_back(policy.deterministicMissCount(0));
    }
    out.victims = std::move(rec.victims);
    out.stats = cache.stats();
    return out;
}

void
expectIdentical(const ReplayResult &fast, const ReplayResult &ref)
{
    ASSERT_EQ(fast.victims.size(), ref.victims.size());
    for (std::size_t i = 0; i < fast.victims.size(); ++i)
        ASSERT_EQ(fast.victims[i], ref.victims[i])
            << "eviction sequences diverge at step " << i;
    EXPECT_EQ(fast.stats.hits, ref.stats.hits);
    EXPECT_EQ(fast.stats.misses, ref.stats.misses);
    EXPECT_EQ(fast.stats.evictions, ref.stats.evictions);
    ASSERT_EQ(fast.detMiss0, ref.detMiss0);
}

std::vector<BlockAccess>
smallOltpStream()
{
    OltpParams p;
    p.duration = 600; // 10 minutes keeps the suite fast
    p.busyInterarrivalMs = 400;
    p.quietInterarrivalMs = 1500;
    return expandTrace(makeOltpTrace(p));
}

std::vector<BlockAccess>
syntheticStream(uint64_t seed)
{
    SyntheticParams sp;
    sp.numRequests = 6000;
    sp.numDisks = 5;
    sp.arrival = ArrivalModel::pareto(120.0, 1.5);
    sp.address.footprintBlocks = 400;
    sp.address.reuseProb = 0.65;
    sp.seed = seed;
    return expandTrace(generateSynthetic(sp));
}

using OpgParam = std::tuple<DpmKind, double /*theta*/>;

class OpgEquivalence : public ::testing::TestWithParam<OpgParam>
{
};

TEST_P(OpgEquivalence, OltpReplayIsByteIdentical)
{
    const auto [kind, theta] = GetParam();
    const auto accesses = smallOltpStream();
    const PowerModel pm;
    const std::size_t capacity = 256;

    OpgPolicy fast(pm, kind, theta);
    ReferenceOpgPolicy ref(pm, kind, theta, /*refPricing=*/true);
    const auto fastRun = replay(fast, accesses, capacity);
    const auto refRun = replay(ref, accesses, capacity);
    expectIdentical(fastRun, refRun);
    fast.validateInternalState(/*full=*/true);

    // Priced schedule energy must be exactly equal, not approximately.
    SchedulePricing pricing{&pm, 0.05, accesses.back().time + 1};
    OpgPolicy fast2(pm, kind, theta);
    ReferenceOpgPolicy ref2(pm, kind, theta, /*refPricing=*/true);
    const Energy fastE =
        policyScheduleEnergy(accesses, capacity, fast2, pricing);
    const Energy refE =
        policyScheduleEnergy(accesses, capacity, ref2, pricing);
    EXPECT_EQ(fastE, refE);
}

TEST_P(OpgEquivalence, SyntheticReplayIsByteIdentical)
{
    const auto [kind, theta] = GetParam();
    const PowerModel pm;
    for (uint64_t seed : {101u, 202u, 303u}) {
        const auto accesses = syntheticStream(seed);
        OpgPolicy fast(pm, kind, theta);
        ReferenceOpgPolicy ref(pm, kind, theta, /*refPricing=*/true);
        const auto fastRun = replay(fast, accesses, 96);
        const auto refRun = replay(ref, accesses, 96);
        expectIdentical(fastRun, refRun);
        fast.validateInternalState(/*full=*/true);
    }
}

TEST_P(OpgEquivalence, PenaltiesMatchReferenceMidReplay)
{
    const auto [kind, theta] = GetParam();
    const PowerModel pm;
    const auto accesses = syntheticStream(404);

    OpgPolicy fast(pm, kind, theta);
    ReferenceOpgPolicy ref(pm, kind, theta, /*refPricing=*/true);
    Cache fastCache(64, fast);
    Cache refCache(64, ref);
    fast.prepare(accesses);
    ref.prepare(accesses);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        fastCache.access(accesses[i].block, accesses[i].time, i);
        refCache.access(accesses[i].block, accesses[i].time, i);
        if (i % 500 != 0)
            continue;
        // Every resident block must carry the same penalty in both.
        ASSERT_EQ(fastCache.stats().misses, refCache.stats().misses);
        ASSERT_EQ(fast.penaltyOf(accesses[i].block),
                  ref.penaltyOf(accesses[i].block))
            << "penalty diverges at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Golden, OpgEquivalence,
    ::testing::Combine(::testing::Values(DpmKind::Oracle,
                                         DpmKind::Practical),
                       ::testing::Values(0.0, 29.6)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) == DpmKind::Oracle
            ? "oracle"
            : "practical";
        n += std::get<1>(info.param) > 0 ? "_theta" : "_pure";
        return n;
    });

/**
 * The spillable oracle store must replay byte-identically to the
 * in-memory store at every budget — a 1-byte budget (pages spill the
 * moment an operation releases them), a mid budget (steady churn),
 * and SIZE_MAX (machinery engaged, never evicts). Spilling moves
 * bytes, never values, so any divergence is a bug, not noise.
 */
TEST(SpilledOpgEquivalence, ReplayMatchesInMemoryAtEveryBudget)
{
    const PowerModel pm;
    const auto accesses = syntheticStream(505);
    OpgPolicy plain(pm, DpmKind::Oracle, 0.0);
    const auto want = replay(plain, accesses, 96);
    for (const std::size_t budget :
         {std::size_t{1}, std::size_t{64} << 10,
          static_cast<std::size_t>(-1)}) {
        SpilledOpgPolicy spilled(pm, DpmKind::Oracle, 0.0, budget);
        const auto got = replay(spilled, accesses, 96);
        expectIdentical(got, want);
        spilled.validateInternalState(/*full=*/true);
    }
}

TEST(SpilledOpgEquivalence, PenaltiesMatchUnderTightBudget)
{
    const PowerModel pm;
    const auto accesses = syntheticStream(606);
    OpgPolicy plain(pm, DpmKind::Practical, 29.6);
    SpilledOpgPolicy spilled(pm, DpmKind::Practical, 29.6,
                             /*mem_budget=*/4096);
    Cache plainCache(64, plain);
    Cache spilledCache(64, spilled);
    plain.prepare(accesses);
    spilled.prepare(accesses);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        plainCache.access(accesses[i].block, accesses[i].time, i);
        spilledCache.access(accesses[i].block, accesses[i].time, i);
        if (i % 500 != 0)
            continue;
        ASSERT_EQ(plainCache.stats().misses,
                  spilledCache.stats().misses);
        ASSERT_EQ(spilled.penaltyOf(accesses[i].block),
                  plain.penaltyOf(accesses[i].block))
            << "penalty diverges at access " << i;
    }
}

TEST(BeladyEquivalence, OltpReplayIsByteIdentical)
{
    const auto accesses = smallOltpStream();
    BeladyPolicy fast;
    ReferenceBeladyPolicy ref;
    const auto fastRun = replay(fast, accesses, 256);
    const auto refRun = replay(ref, accesses, 256);
    expectIdentical(fastRun, refRun);
}

TEST(BeladyEquivalence, SyntheticReplayIsByteIdentical)
{
    for (uint64_t seed : {11u, 22u, 33u}) {
        const auto accesses = syntheticStream(seed);
        BeladyPolicy fast;
        ReferenceBeladyPolicy ref;
        const auto fastRun = replay(fast, accesses, 96);
        const auto refRun = replay(ref, accesses, 96);
        expectIdentical(fastRun, refRun);
    }
}

} // namespace
} // namespace pacache
