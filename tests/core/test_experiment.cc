#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

Trace
smallTrace(uint64_t seed = 1)
{
    SyntheticParams p;
    p.numRequests = 2000;
    p.numDisks = 4;
    p.arrival = ArrivalModel::exponential(100.0);
    p.writeRatio = 0.2;
    p.address.footprintBlocks = 500;
    p.seed = seed;
    return generateSynthetic(p);
}

ExperimentConfig
baseConfig()
{
    ExperimentConfig cfg;
    cfg.cacheBlocks = 256;
    return cfg;
}

class AllPolicies : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(AllPolicies, RunsAndProducesSaneResults)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    cfg.policy = GetParam();
    const ExperimentResult r = runExperiment(t, cfg);

    EXPECT_EQ(r.cache.accesses, t.size());
    EXPECT_EQ(r.cache.hits + r.cache.misses, r.cache.accesses);
    EXPECT_GT(r.totalEnergy, 0.0);
    EXPECT_EQ(r.perDisk.size(), 4u);
    // Every block access got a response (write-back default).
    EXPECT_EQ(r.responses.count(), t.size());
    EXPECT_EQ(r.policyName, policyKindName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPolicies,
    ::testing::Values(PolicyKind::LRU, PolicyKind::FIFO,
                      PolicyKind::CLOCK, PolicyKind::ARC, PolicyKind::MQ,
                      PolicyKind::LIRS, PolicyKind::Belady,
                      PolicyKind::OPG, PolicyKind::PALRU,
                      PolicyKind::PAARC, PolicyKind::PALIRS,
                      PolicyKind::InfiniteCache),
    [](const auto &info) {
        std::string n = policyKindName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(Experiment, InfiniteCacheOnlyColdMisses)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    cfg.policy = PolicyKind::InfiniteCache;
    const ExperimentResult r = runExperiment(t, cfg);
    EXPECT_EQ(r.cache.misses, r.cache.coldMisses);
    EXPECT_EQ(r.cache.evictions, 0u);
}

TEST(Experiment, BeladyMinimizesMisses)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    for (PolicyKind k :
         {PolicyKind::LRU, PolicyKind::FIFO, PolicyKind::CLOCK,
          PolicyKind::ARC, PolicyKind::MQ, PolicyKind::LIRS,
          PolicyKind::OPG, PolicyKind::PALRU}) {
        cfg.policy = PolicyKind::Belady;
        const auto belady = runExperiment(t, cfg);
        cfg.policy = k;
        const auto other = runExperiment(t, cfg);
        EXPECT_LE(belady.cache.misses, other.cache.misses)
            << policyKindName(k);
    }
}

TEST(Experiment, OracleNeverWorseThanPractical)
{
    const Trace t = smallTrace();
    for (PolicyKind k : {PolicyKind::LRU, PolicyKind::Belady}) {
        ExperimentConfig cfg = baseConfig();
        cfg.policy = k;
        cfg.dpm = DpmChoice::Oracle;
        const auto oracle = runExperiment(t, cfg);
        cfg.dpm = DpmChoice::Practical;
        const auto practical = runExperiment(t, cfg);
        EXPECT_LE(oracle.totalEnergy, practical.totalEnergy * 1.001)
            << policyKindName(k);
    }
}

TEST(Experiment, AdaptiveDpmSitsBetweenAlwaysOnAndOracle)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    cfg.dpm = DpmChoice::Adaptive;
    const auto adaptive = runExperiment(t, cfg);
    cfg.dpm = DpmChoice::AlwaysOn;
    const auto on = runExperiment(t, cfg);
    cfg.dpm = DpmChoice::Oracle;
    const auto oracle = runExperiment(t, cfg);
    EXPECT_LE(adaptive.totalEnergy, on.totalEnergy * 1.001);
    EXPECT_GE(adaptive.totalEnergy, oracle.totalEnergy * 0.999);
    EXPECT_EQ(adaptive.cache.misses, on.cache.misses);
}

TEST(Experiment, AlwaysOnBurnsMostIdleEnergy)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    cfg.dpm = DpmChoice::AlwaysOn;
    const auto on = runExperiment(t, cfg);
    cfg.dpm = DpmChoice::Practical;
    const auto practical = runExperiment(t, cfg);
    // With 4 disks at 100ms mean inter-arrival each disk sees ~2.5/s:
    // gaps are short, but the long tail still lets practical save a
    // little; always-on can never be cheaper.
    EXPECT_GE(on.totalEnergy, practical.totalEnergy * 0.999);
    EXPECT_EQ(on.energy.spinUps, 0u);
}

TEST(Experiment, MissesDriveDiskAccesses)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    cfg.policy = PolicyKind::LRU;
    const auto r = runExperiment(t, cfg);
    uint64_t accesses = 0;
    for (uint64_t a : r.diskAccesses)
        accesses += a;
    // Write-back: disk accesses = read misses + write-back I/Os
    // <= misses + evictions.
    EXPECT_LE(accesses, r.cache.misses + r.cache.evictions);
    EXPECT_GT(accesses, 0u);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    cfg.policy = PolicyKind::PALRU;
    const auto a = runExperiment(t, cfg);
    const auto b = runExperiment(t, cfg);
    EXPECT_DOUBLE_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_DOUBLE_EQ(a.responses.mean(), b.responses.mean());
}

TEST(Experiment, EmptyTraceRejected)
{
    ExperimentConfig cfg = baseConfig();
    EXPECT_ANY_THROW(runExperiment(Trace{}, cfg));
}

TEST(Experiment, EnergyBreakdownSumsToTotal)
{
    const Trace t = smallTrace();
    ExperimentConfig cfg = baseConfig();
    const auto r = runExperiment(t, cfg);
    Energy per_disk_sum = 0;
    for (const auto &d : r.perDisk)
        per_disk_sum += d.total();
    EXPECT_NEAR(per_disk_sum, r.energy.total(), 1e-6);
    EXPECT_NEAR(r.totalEnergy, r.energy.total(), 1e-6); // no log disk
}

} // namespace
} // namespace pacache
