/**
 * @file
 * End-to-end edge cases of the coupled simulator: multi-block
 * requests, arrivals during spin-down, queue build-up behind a
 * spin-up, and cross-tool trace round trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "disk/disk.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace pacache
{
namespace
{

TEST(SystemEdgeCases, MultiBlockRequestsExpandAndRespond)
{
    Trace t;
    t.append({1.0, 0, 100, 8, false}); // 8-block read
    t.append({2.0, 1, 200, 4, true});  // 4-block write
    t.append({3.0, 0, 100, 8, false}); // full re-read: 8 hits

    ExperimentConfig cfg;
    cfg.cacheBlocks = 64;
    const ExperimentResult r = runExperiment(t, cfg);
    EXPECT_EQ(r.cache.accesses, 20u);
    EXPECT_EQ(r.cache.misses, 12u);
    EXPECT_EQ(r.cache.hits, 8u);
    EXPECT_EQ(r.responses.count(), 20u);
}

TEST(SystemEdgeCases, PartialOverlapOfMultiBlockRequests)
{
    Trace t;
    t.append({1.0, 0, 100, 4, false}); // blocks 100..103
    t.append({2.0, 0, 102, 4, false}); // 102,103 hit; 104,105 miss

    ExperimentConfig cfg;
    cfg.cacheBlocks = 64;
    const ExperimentResult r = runExperiment(t, cfg);
    EXPECT_EQ(r.cache.hits, 2u);
    EXPECT_EQ(r.cache.misses, 6u);
}

TEST(SystemEdgeCases, ArrivalDuringSpinDownWaitsThenServes)
{
    // Drive a raw disk: request lands exactly inside a demotion.
    PowerModel pm;
    ServiceModel sm(pm.spec());
    EventQueue eq;
    PracticalDpm dpm(pm);
    Disk disk(0, eq, pm, sm, dpm);

    auto submit = [&](Time when) {
        eq.schedule(when, [&](Time t) {
            DiskRequest r;
            r.arrival = t;
            disk.submit(std::move(r));
        });
    };
    submit(1.0);
    // First demotion starts at ~1.0 + service + thr0; the NAP1
    // spin-down takes 0.3 s. Land in the middle of it.
    submit(1.01 + pm.thresholds()[0] + 0.15);
    eq.runAll();
    const Time horizon = std::max(300.0, eq.now());
    eq.runUntil(horizon);
    disk.finalize(horizon);

    EXPECT_EQ(disk.energy().requests, 2u);
    // The request waited for spin-down completion plus the NAP1
    // spin-up (2.18 s).
    EXPECT_GT(disk.responses().max(), 2.0);
    EXPECT_LT(disk.responses().max(), 4.0);
    EXPECT_GE(disk.energy().spinUps, 1u);
}

TEST(SystemEdgeCases, QueueBuildsBehindSpinUp)
{
    PowerModel pm;
    ServiceModel sm(pm.spec());
    EventQueue eq;
    PracticalDpm dpm(pm);
    Disk disk(0, eq, pm, sm, dpm);

    auto submit = [&](Time when, BlockNum b) {
        eq.schedule(when, [&disk, b](Time t) {
            DiskRequest r;
            r.arrival = t;
            r.block = b;
            disk.submit(std::move(r));
        });
    };
    submit(1.0, 1);
    // Burst while the disk is in standby: all five wait for one
    // 10.9 s spin-up, then drain FCFS.
    for (int i = 0; i < 5; ++i)
        submit(500.0 + 0.001 * i, 100 + i);
    eq.runAll();
    const Time horizon = std::max(700.0, eq.now());
    eq.runUntil(horizon);
    disk.finalize(horizon);

    EXPECT_EQ(disk.energy().requests, 6u);
    EXPECT_EQ(disk.energy().spinUps, 1u); // one spin-up serves all
    EXPECT_GT(disk.responses().percentile(0.9), 10.9);
}

TEST(SystemEdgeCases, TraceFileRoundTripPreservesExperiment)
{
    OltpParams p;
    p.duration = 300;
    const Trace original = makeOltpTrace(p);

    std::stringstream ss;
    writeTrace(ss, original);
    const Trace reloaded = readTrace(ss);

    ExperimentConfig cfg;
    cfg.cacheBlocks = 512;
    const auto a = runExperiment(original, cfg);
    const auto b = runExperiment(reloaded, cfg);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_NEAR(a.totalEnergy, b.totalEnergy, a.totalEnergy * 1e-9);
}

TEST(SystemEdgeCases, SingleRequestTrace)
{
    Trace t;
    t.append({1.0, 0, 1, 1, false});
    ExperimentConfig cfg;
    cfg.cacheBlocks = 4;
    const auto r = runExperiment(t, cfg);
    EXPECT_EQ(r.cache.accesses, 1u);
    EXPECT_EQ(r.responses.count(), 1u);
    EXPECT_GT(r.totalEnergy, 0.0);
}

TEST(SystemEdgeCases, AllWritesTraceUnderEveryPolicy)
{
    Trace t;
    for (int i = 0; i < 50; ++i)
        t.append({1.0 + i * 5.0, static_cast<DiskId>(i % 2),
                  static_cast<BlockNum>(i), 1, true});
    for (WritePolicy wp :
         {WritePolicy::WriteThrough, WritePolicy::WriteBack,
          WritePolicy::WriteBackEagerUpdate,
          WritePolicy::WriteThroughDeferredUpdate}) {
        ExperimentConfig cfg;
        cfg.cacheBlocks = 16;
        cfg.storage.writePolicy = wp;
        const auto r = runExperiment(t, cfg);
        EXPECT_EQ(r.responses.count(), 50u) << writePolicyName(wp);
    }
}

} // namespace
} // namespace pacache
