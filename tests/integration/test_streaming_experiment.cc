/**
 * @file
 * The ingestion subsystem's acceptance test: driving runExperiment()
 * from a streaming source — text, binary .pct, or in-memory adapter —
 * must produce statistics bit-identical to the materialized path on
 * the same workload.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/text_source.hh"
#include "tracefmt/trace_source.hh"

#include "../tracefmt/temp_file.hh"

namespace pacache
{
namespace
{

Trace
workload(uint64_t seed = 7)
{
    SyntheticParams p;
    p.numRequests = 3000;
    p.numDisks = 4;
    p.arrival = ArrivalModel::exponential(50.0);
    p.writeRatio = 0.3;
    p.address.footprintBlocks = 600;
    p.seed = seed;
    return generateSynthetic(p);
}

/** Every statistic the report prints, compared exactly. */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cache.accesses, b.cache.accesses);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.cache.evictions, b.cache.evictions);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.energy.serviceEnergy, b.energy.serviceEnergy);
    EXPECT_EQ(a.energy.spinUps, b.energy.spinUps);
    EXPECT_EQ(a.energy.spinDowns, b.energy.spinDowns);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.responses.count(), b.responses.count());
    EXPECT_EQ(a.responses.mean(), b.responses.mean());
    EXPECT_EQ(a.responses.max(), b.responses.max());
    EXPECT_EQ(a.responses.percentile(0.95), b.responses.percentile(0.95));
    ASSERT_EQ(a.perDisk.size(), b.perDisk.size());
    for (std::size_t d = 0; d < a.perDisk.size(); ++d)
        EXPECT_EQ(a.perDisk[d].total(), b.perDisk[d].total()) << d;
}

TEST(StreamingExperiment, MemorySourceMatchesInMemoryRun)
{
    const Trace t = workload();
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::LRU;
    cfg.cacheBlocks = 256;

    const ExperimentResult direct = runExperiment(t, cfg);
    tracefmt::MemorySource src(t);
    const ExperimentResult streamed = runExperiment(src, cfg);
    expectIdentical(direct, streamed);
}

TEST(StreamingExperiment, TextAndPctFilesMatchBitForBit)
{
    // Both runs descend from the same text file, so even the parsed
    // doubles are identical; .pct stores them losslessly.
    const Trace generated = workload(11);
    const std::string txt = test::tempPath("e2e_stream.txt");
    writeTraceFile(txt, generated);
    const Trace t = readTraceFile(txt);

    const std::string pct = test::tempPath("e2e_stream.pct");
    {
        tracefmt::TextSource src(txt);
        tracefmt::writePct(pct, src);
    }

    ExperimentConfig cfg;
    cfg.policy = PolicyKind::ARC;
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = 200;
    cfg.storage.writePolicy = WritePolicy::WriteBack;

    const ExperimentResult direct = runExperiment(t, cfg);

    tracefmt::TextSource text_src(txt);
    const ExperimentResult from_text = runExperiment(text_src, cfg);
    expectIdentical(direct, from_text);

    tracefmt::PctMmapSource mmap_src(pct);
    const ExperimentResult from_pct = runExperiment(mmap_src, cfg);
    expectIdentical(direct, from_pct);

    tracefmt::PctBufferedSource buf_src(pct);
    const ExperimentResult from_buf = runExperiment(buf_src, cfg);
    expectIdentical(direct, from_buf);
}

TEST(StreamingExperiment, OfflinePoliciesMaterializeTransparently)
{
    const Trace t = workload(23);
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::Belady;
    cfg.cacheBlocks = 128;

    const ExperimentResult direct = runExperiment(t, cfg);
    tracefmt::MemorySource src(t);
    const ExperimentResult streamed = runExperiment(src, cfg);
    expectIdentical(direct, streamed);
}

TEST(StreamingExperiment, StreamingWithWritePoliciesMatches)
{
    const Trace t = workload(31);
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::PALRU;
    cfg.storage.writePolicy = WritePolicy::WriteBackEagerUpdate;
    cfg.cacheBlocks = 256;

    const ExperimentResult direct = runExperiment(t, cfg);
    tracefmt::MemorySource src(t);
    const ExperimentResult streamed = runExperiment(src, cfg);
    expectIdentical(direct, streamed);
}

TEST(StreamingExperiment, EmptySourceIsRejected)
{
    const Trace t;
    tracefmt::MemorySource src(t);
    ExperimentConfig cfg;
    EXPECT_ANY_THROW(runExperiment(src, cfg));
}

} // namespace
} // namespace pacache
