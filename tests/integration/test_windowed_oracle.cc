/**
 * @file
 * Golden equivalence suite for the out-of-core oracle path and the
 * disk-sharded replay (PR: windowed offline oracles + disk-sharded
 * streaming).
 *
 * The windowed replay (runExperiment over a streaming source with
 * config.windowAccesses > 0) must be BIT-identical to the
 * materialized oracle on the same workload — evictions, counters,
 * every energy cell of the per-disk ledger breakdown — for every
 * window size, including window 1 and windows straddling the
 * backward-pass chunk size. The sharded replay must be invariant in
 * the worker count, and at one shard must degenerate to the plain
 * streaming run.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "obs/energy_ledger.hh"
#include "runner/shard_replay.hh"
#include "trace/synthetic.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/trace_source.hh"

#include "../tracefmt/temp_file.hh"

namespace pacache
{
namespace
{

Trace
workload(uint64_t seed = 17, uint32_t disks = 6)
{
    SyntheticParams p;
    p.numRequests = 2500;
    p.numDisks = disks;
    p.arrival = ArrivalModel::pareto(60.0);
    p.writeRatio = 0.25;
    p.address.footprintBlocks = 300;
    p.seed = seed;
    return generateSynthetic(p);
}

std::string
writeTracePct(const Trace &t, const std::string &name)
{
    const std::string path = test::tempPath(name);
    tracefmt::MemorySource src(t);
    tracefmt::writePct(path, src);
    return path;
}

/** One EnergyStats breakdown, cell by cell (the ledger rows). */
void
expectSameBreakdown(const EnergyStats &a, const EnergyStats &b,
                    const char *what)
{
    EXPECT_EQ(a.total(), b.total()) << what;
    EXPECT_EQ(a.serviceEnergy, b.serviceEnergy) << what;
    EXPECT_EQ(a.spinUpEnergy, b.spinUpEnergy) << what;
    EXPECT_EQ(a.spinDownEnergy, b.spinDownEnergy) << what;
    EXPECT_EQ(a.spinUps, b.spinUps) << what;
    EXPECT_EQ(a.spinDowns, b.spinDowns) << what;
    EXPECT_EQ(a.requests, b.requests) << what;
    ASSERT_EQ(a.idleEnergyPerMode.size(), b.idleEnergyPerMode.size());
    for (std::size_t m = 0; m < a.idleEnergyPerMode.size(); ++m)
        EXPECT_EQ(a.idleEnergyPerMode[m], b.idleEnergyPerMode[m])
            << what << " mode " << m;
    for (std::size_t c = 0; c < kNumWakeCauses; ++c) {
        EXPECT_EQ(a.spinUpsByCause[c], b.spinUpsByCause[c]) << what;
        EXPECT_EQ(a.spinUpEnergyByCause[c], b.spinUpEnergyByCause[c])
            << what;
    }
}

/** Every statistic a run produces, compared exactly (not near). */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.cache.accesses, b.cache.accesses);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.cache.evictions, b.cache.evictions);
    EXPECT_EQ(a.cache.coldMisses, b.cache.coldMisses);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.responses.count(), b.responses.count());
    EXPECT_EQ(a.responses.mean(), b.responses.mean());
    EXPECT_EQ(a.responses.max(), b.responses.max());
    expectSameBreakdown(a.energy, b.energy, "aggregate");
    ASSERT_EQ(a.perDisk.size(), b.perDisk.size());
    for (std::size_t d = 0; d < a.perDisk.size(); ++d)
        expectSameBreakdown(a.perDisk[d], b.perDisk[d], "per-disk");
    // The attribution ledger both runs imply must reconcile too.
    obs::EnergyLedger la, lb;
    for (std::size_t d = 0; d < a.perDisk.size(); ++d) {
        la.addDisk("disk" + std::to_string(d), a.perDisk[d]);
        lb.addDisk("disk" + std::to_string(d), b.perDisk[d]);
    }
    EXPECT_TRUE(la.conserves());
    EXPECT_TRUE(lb.conserves());
    EXPECT_EQ(la.total().total(), lb.total().total());
    EXPECT_EQ(a.diskAccesses, b.diskAccesses);
    EXPECT_EQ(a.diskMeanInterArrival, b.diskMeanInterArrival);
    EXPECT_EQ(a.logWrites, b.logWrites);
    EXPECT_EQ(a.logServiceEnergy, b.logServiceEnergy);
    EXPECT_EQ(a.prefetchedBlocks, b.prefetchedBlocks);
}

class WindowedOracleEquivalence
    : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(WindowedOracleEquivalence, MatchesMaterializedForEveryWindow)
{
    const Trace t = workload();
    const std::string pct = writeTracePct(t, "winoracle.pct");

    ExperimentConfig cfg;
    cfg.policy = GetParam();
    cfg.dpm = DpmChoice::Oracle;
    cfg.cacheBlocks = 220;
    const ExperimentResult materialized = runExperiment(t, cfg);

    const std::size_t chunk = 256;
    cfg.oracleChunkAccesses = chunk;
    // The satellite matrix: 1, chunk-1, chunk, chunk+1, "infinite".
    const std::size_t windows[] = {1, chunk - 1, chunk, chunk + 1,
                                   std::size_t(1) << 20};
    for (const std::size_t w : windows) {
        SCOPED_TRACE("window " + std::to_string(w));
        cfg.windowAccesses = w;
        tracefmt::PctMmapSource src(pct);
        const ExperimentResult windowed = runExperiment(src, cfg);
        expectIdentical(materialized, windowed);
    }
}

TEST_P(WindowedOracleEquivalence, PracticalDpmAndWriteBackMatch)
{
    // A second point in config space: on-line DPM pricing and a
    // write-back cache, where eviction order feeds dirty flushes.
    const Trace t = workload(29);
    const std::string pct = writeTracePct(t, "winoracle_wb.pct");

    ExperimentConfig cfg;
    cfg.policy = GetParam();
    cfg.dpm = DpmChoice::Practical;
    cfg.storage.writePolicy = WritePolicy::WriteBack;
    cfg.cacheBlocks = 180;
    const ExperimentResult materialized = runExperiment(t, cfg);

    cfg.windowAccesses = 100;
    cfg.oracleChunkAccesses = 333;
    tracefmt::PctMmapSource src(pct);
    const ExperimentResult windowed = runExperiment(src, cfg);
    expectIdentical(materialized, windowed);
}

INSTANTIATE_TEST_SUITE_P(Oracles, WindowedOracleEquivalence,
                         ::testing::Values(PolicyKind::Belady,
                                           PolicyKind::OPG),
                         [](const auto &info) {
                             return info.param == PolicyKind::OPG
                                        ? "OPG"
                                        : "Belady";
                         });

TEST(WindowedOracle, NonPctSourcesSpillTransparently)
{
    // A MemorySource has no backing .pct file; the windowed path
    // must spill it to a temporary one and still match.
    const Trace t = workload(41);
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::OPG;
    cfg.cacheBlocks = 200;
    const ExperimentResult materialized = runExperiment(t, cfg);

    cfg.windowAccesses = 64;
    tracefmt::MemorySource src(t);
    const ExperimentResult windowed = runExperiment(src, cfg);
    expectIdentical(materialized, windowed);
}

TEST(ShardedReplay, InvariantInWorkerCount)
{
    const Trace t = workload(53, 9);
    const std::string pct = writeTracePct(t, "shard_jobs.pct");
    for (const PolicyKind policy :
         {PolicyKind::OPG, PolicyKind::LRU}) {
        ExperimentConfig cfg;
        cfg.policy = policy;
        cfg.cacheBlocks = 240;
        runner::ShardReplayOptions opts;
        opts.shards = 4;
        opts.jobs = 1;
        const ExperimentResult serial =
            runner::runShardedExperiment(pct, cfg, opts);
        opts.jobs = 5;
        const ExperimentResult parallel =
            runner::runShardedExperiment(pct, cfg, opts);
        expectIdentical(serial, parallel);
    }
}

TEST(ShardedReplay, OneShardDegeneratesToPlainStreaming)
{
    const Trace t = workload(61, 7);
    const std::string pct = writeTracePct(t, "shard_one.pct");
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::OPG;
    cfg.cacheBlocks = 256;
    cfg.windowAccesses = 128; // same window on both paths

    tracefmt::PctMmapSource src(pct);
    const ExperimentResult plain = runExperiment(src, cfg);

    runner::ShardReplayOptions opts;
    opts.shards = 1;
    const ExperimentResult sharded =
        runner::runShardedExperiment(pct, cfg, opts);
    expectIdentical(plain, sharded);
}

} // namespace
} // namespace pacache
