/**
 * @file
 * End-to-end checks of the paper's headline qualitative claims on a
 * scaled-down OLTP-like workload:
 *  - PA-LRU consumes less disk energy than LRU and improves average
 *    response time (paper Figure 6a/6c);
 *  - the infinite cache lower-bounds every policy under Oracle DPM;
 *  - OPG is more energy-efficient than Belady under Oracle DPM
 *    (paper Section 5.2).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hh"
#include "trace/workloads.hh"

namespace pacache
{
namespace
{

const Trace &
oltpTrace()
{
    static const Trace trace = [] {
        OltpParams p;
        p.duration = 2400; // scaled down from 2 h for test speed
        return makeOltpTrace(p);
    }();
    return trace;
}

ExperimentConfig
oltpConfig(PolicyKind policy, DpmChoice dpm)
{
    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.dpm = dpm;
    cfg.cacheBlocks = 1024;   // scaled with the scaled-down trace
    cfg.pa.epochLength = 300; // scale the epoch with the trace
    return cfg;
}

ExperimentResult
run(PolicyKind policy, DpmChoice dpm)
{
    return runExperiment(oltpTrace(), oltpConfig(policy, dpm));
}

TEST(ReplacementEnergy, PaLruSavesEnergyOverLru)
{
    const auto lru = run(PolicyKind::LRU, DpmChoice::Practical);
    const auto pa = run(PolicyKind::PALRU, DpmChoice::Practical);
    EXPECT_LT(pa.totalEnergy, lru.totalEnergy);
}

TEST(ReplacementEnergy, PaLruImprovesResponseTime)
{
    const auto lru = run(PolicyKind::LRU, DpmChoice::Practical);
    const auto pa = run(PolicyKind::PALRU, DpmChoice::Practical);
    EXPECT_LT(pa.responses.mean(), lru.responses.mean());
}

TEST(ReplacementEnergy, PaLruReducesSpinUps)
{
    const auto lru = run(PolicyKind::LRU, DpmChoice::Practical);
    const auto pa = run(PolicyKind::PALRU, DpmChoice::Practical);
    EXPECT_LT(pa.energy.spinUps, lru.energy.spinUps);
}

TEST(ReplacementEnergy, InfiniteCacheLowerBoundsUnderOracle)
{
    const auto inf = run(PolicyKind::InfiniteCache, DpmChoice::Oracle);
    for (PolicyKind k : {PolicyKind::LRU, PolicyKind::Belady,
                         PolicyKind::OPG, PolicyKind::PALRU}) {
        const auto r = run(k, DpmChoice::Oracle);
        EXPECT_LE(inf.totalEnergy, r.totalEnergy * 1.0001)
            << policyKindName(k);
    }
}

TEST(ReplacementEnergy, OpgBeatsBeladyOnEnergyUnderOracle)
{
    const auto belady = run(PolicyKind::Belady, DpmChoice::Oracle);
    const auto opg = run(PolicyKind::OPG, DpmChoice::Oracle);
    EXPECT_LT(opg.totalEnergy, belady.totalEnergy);
    // ... while Belady keeps the miss-count crown.
    EXPECT_LE(belady.cache.misses, opg.cache.misses);
}

TEST(ReplacementEnergy, OpgShowcaseSacrificesMissesForEnergy)
{
    // The deterministic two-disk pattern where Belady's forward-
    // distance rule is maximally energy-blind (generalized Figure 3):
    // OPG must take strictly more misses yet spend much less energy,
    // by keeping the sleepy disk's working set cached.
    const OpgShowcaseParams p;
    const Trace trace = makeOpgShowcaseTrace(p);

    ExperimentConfig cfg;
    cfg.cacheBlocks = p.suggestedCacheBlocks();
    cfg.dpm = DpmChoice::Practical;

    cfg.policy = PolicyKind::Belady;
    const auto belady = runExperiment(trace, cfg);
    cfg.policy = PolicyKind::OPG;
    const auto opg = runExperiment(trace, cfg);

    EXPECT_GT(opg.cache.misses, belady.cache.misses);
    EXPECT_LT(opg.totalEnergy, belady.totalEnergy * 0.9);
    // The sleepy disk (disk 1) parks in standby under OPG.
    EXPECT_GT(opg.perDisk[1].timePerMode.back(),
              belady.perDisk[1].timePerMode.back());
    // And it wakes far less often.
    EXPECT_LT(opg.perDisk[1].spinUps, belady.perDisk[1].spinUps / 2);
}

TEST(ReplacementEnergy, QuietDisksSleepMoreUnderPaLru)
{
    const OltpParams p; // busyDisks = 6
    const auto lru = run(PolicyKind::LRU, DpmChoice::Practical);
    const auto pa = run(PolicyKind::PALRU, DpmChoice::Practical);
    // Aggregate standby residency of the quiet disks grows under PA.
    auto standby_time = [&](const ExperimentResult &r) {
        Time total = 0;
        for (std::size_t d = p.busyDisks; d < r.perDisk.size(); ++d)
            total += r.perDisk[d].timePerMode.back();
        return total;
    };
    EXPECT_GT(standby_time(pa), standby_time(lru));
}

TEST(ReplacementEnergy, PaLruStretchesQuietDiskInterArrival)
{
    const OltpParams p;
    const auto lru = run(PolicyKind::LRU, DpmChoice::Practical);
    const auto pa = run(PolicyKind::PALRU, DpmChoice::Practical);
    // Figure 7b: the mean inter-arrival time at protected disks grows.
    double lru_sum = 0, pa_sum = 0;
    int counted = 0;
    for (std::size_t d = p.busyDisks; d < lru.perDisk.size(); ++d) {
        if (lru.diskMeanInterArrival[d] > 0 &&
            pa.diskMeanInterArrival[d] > 0) {
            lru_sum += lru.diskMeanInterArrival[d];
            pa_sum += pa.diskMeanInterArrival[d];
            ++counted;
        }
    }
    ASSERT_GT(counted, 0);
    EXPECT_GT(pa_sum, lru_sum);
}

} // namespace
} // namespace pacache
