/**
 * @file
 * The paper's Figure-3 example, executed: a 4-entry cache, a 2-mode
 * disk with instantaneous transitions and a 10-unit spin-down
 * threshold. Belady has fewer misses than the alternative schedule,
 * yet consumes MORE disk energy — Belady is not energy-optimal.
 */

#include <gtest/gtest.h>

#include "cache/belady.hh"
#include "cache/cache.hh"
#include "disk/disk.hh"
#include "disk/dpm.hh"

namespace pacache
{
namespace
{

/** Drive a disk with accesses at the given times; finalize at @p end. */
EnergyStats
runAccessPattern(const std::vector<Time> &times, Time end)
{
    // Figure-3 power model: idle 1 W, standby 0 W, instantaneous
    // transitions; the spin-up costs 4 J (the "shaded" transition
    // area). Threshold-based DPM with a 10-unit timeout.
    const PowerModel pm = makeTwoModeModel(1.0, 0.0, 4.0, 0.0, 0.0, 0.0);
    const ServiceModel sm(pm.spec());
    EventQueue eq;
    FixedTimeoutDpm dpm(10.0, 1);
    Disk disk(0, eq, pm, sm, dpm);
    for (Time t : times) {
        eq.schedule(t, [&](Time now) {
            DiskRequest r;
            r.arrival = now;
            r.block = 1;
            disk.submit(std::move(r));
        });
    }
    eq.runAll();
    const Time horizon = std::max(end, eq.now());
    eq.runUntil(horizon);
    disk.finalize(horizon);
    return disk.energy();
}

/** Misses produced by a policy on the Figure-3 request sequence. */
std::vector<Time>
missTimes(ReplacementPolicy &policy)
{
    // Requests: A B C D E B E C D at t=0..8, then A at t=16.
    const BlockNum A = 1, B = 2, C = 3, D = 4, E = 5;
    std::vector<std::pair<Time, BlockNum>> reqs{
        {0, A}, {1, B}, {2, C}, {3, D}, {4, E},
        {5, B}, {6, E}, {7, C}, {8, D}, {16, A}};

    std::vector<BlockAccess> accs;
    for (const auto &[t, n] : reqs)
        accs.push_back({t, BlockId{0, n}, false, accs.size()});

    Cache cache(4, policy);
    policy.prepare(accs);
    std::vector<Time> misses;
    for (std::size_t i = 0; i < accs.size(); ++i) {
        if (!cache.access(accs[i].block, accs[i].time, i).hit)
            misses.push_back(accs[i].time);
    }
    return misses;
}

TEST(PaperFigure3, BeladyMissSchedule)
{
    BeladyPolicy belady;
    const auto misses = missTimes(belady);
    // Cold misses at 0..4 (E evicts A, whose reuse is furthest), then
    // hits until the A miss at 16.
    EXPECT_EQ(misses,
              (std::vector<Time>{0, 1, 2, 3, 4, 16}));
}

TEST(PaperFigure3, AlternativeHasMoreMisses)
{
    // The paper's alternative keeps A cached and re-misses on B/E
    // instead: misses at 0..6, then hits (including A at 16).
    const std::vector<Time> alternative{0, 1, 2, 3, 4, 5, 6};
    BeladyPolicy belady;
    EXPECT_GT(alternative.size(), missTimes(belady).size());
}

TEST(PaperFigure3, BeladyIsNotEnergyOptimal)
{
    BeladyPolicy belady;
    const auto belady_misses = missTimes(belady);
    const std::vector<Time> alternative{0, 1, 2, 3, 4, 5, 6};

    const EnergyStats be = runAccessPattern(belady_misses, 30.0);
    const EnergyStats ae = runAccessPattern(alternative, 30.0);

    // Belady: idle 0->14 (14 J), standby, spin-up at 16 (4 J), idle
    // 16->26 (10 J), standby to the horizon ~ 28 J. Alternative:
    // idle 0->16 (16 J), standby to the horizon ~ 16 J. More misses,
    // less energy.
    EXPECT_GT(be.total(), ae.total());
    EXPECT_EQ(be.spinUps, 1u);
    EXPECT_EQ(ae.spinUps, 0u);
    EXPECT_NEAR(ae.total(), 16.0, 0.7);
    EXPECT_NEAR(be.total(), 28.0, 0.7);
}

} // namespace
} // namespace pacache
