#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "cache/belady.hh"
#include "cache/belady_ref.hh"
#include "qa/properties.hh"
#include "qa/trace_gen.hh"
#include "support/faulty_belady.hh"

namespace pacache::qa
{
namespace
{

TEST(PropertyRegistry, HasAtLeastEightUniquelyNamedProperties)
{
    const std::vector<PropertyDef> &props = allProperties();
    EXPECT_GE(props.size(), 8u);
    std::set<std::string> names;
    for (const PropertyDef &prop : props) {
        EXPECT_NE(std::string(prop.name), "");
        EXPECT_NE(std::string(prop.description), "");
        EXPECT_TRUE(names.insert(prop.name).second)
            << "duplicate property name " << prop.name;
        EXPECT_TRUE(prop.check) << prop.name << " has no check";
    }
}

TEST(PropertyRegistry, FindPropertyRoundTrips)
{
    for (const PropertyDef &prop : allProperties()) {
        const PropertyDef *found = findProperty(prop.name);
        ASSERT_NE(found, nullptr) << prop.name;
        EXPECT_EQ(std::string(found->name), prop.name);
    }
    EXPECT_EQ(findProperty("no_such_property"), nullptr);
}

TEST(PropertyRegistry, RunPropertyConvertsExceptionsToFailures)
{
    PropertyDef thrower{
        "thrower", "always throws",
        [](const FuzzCase &) -> PropertyResult {
            throw std::runtime_error("synthetic explosion");
        }};
    const FuzzCase c = makeCase(1, 0);
    const PropertyResult result = runProperty(thrower, c);
    EXPECT_FALSE(result.passed);
    EXPECT_NE(result.message.find("synthetic explosion"),
              std::string::npos)
        << result.message;
}

TEST(PropertyRegistry, WholeRegistryPassesOnGeneratedCases)
{
    // The fuzz campaign at scale lives behind the fuzz-smoke ctest
    // label; this is the in-suite sanity slice.
    CaseProfile profile;
    profile.maxRequests = 400;
    for (uint64_t i = 0; i < 4; ++i) {
        const FuzzCase c = makeCase(1234, i, profile);
        for (const PropertyDef &prop : allProperties()) {
            const PropertyResult result = runProperty(prop, c);
            EXPECT_TRUE(result.passed)
                << prop.name << " failed on case " << i << " (seed "
                << c.seed << "): " << result.message;
        }
    }
}

FuzzCase
divergingCase()
{
    // Cache of 2; at the miss on block 3 the residents' next uses
    // differ (block 1 is re-referenced before block 2), so
    // furthest-first and nearest-first evict different victims.
    FuzzCase c;
    c.seed = 0;
    c.cfg.cacheBlocks = 2;
    c.trace.append({0.0, 0, 1, 1, false});
    c.trace.append({1.0, 0, 2, 1, false});
    c.trace.append({2.0, 0, 3, 1, false});
    c.trace.append({3.0, 0, 1, 1, false});
    c.trace.append({4.0, 0, 2, 1, false});
    return c;
}

TEST(PolicyDifferential, EquivalentPoliciesPass)
{
    const FuzzCase c = divergingCase();
    BeladyPolicy fast;
    ReferenceBeladyPolicy ref;
    const PropertyResult result = checkPolicyDifferential(c, fast, ref);
    EXPECT_TRUE(result.passed) << result.message;
}

TEST(PolicyDifferential, CatchesInjectedNearestNextFault)
{
    const FuzzCase c = divergingCase();
    test::NearestNextPolicy buggy;
    ReferenceBeladyPolicy ref;
    const PropertyResult result = checkPolicyDifferential(c, buggy, ref);
    ASSERT_FALSE(result.passed)
        << "harness must flag the inverted eviction order";
    EXPECT_NE(result.message.find("evicts"), std::string::npos)
        << "message should name the diverging eviction: "
        << result.message;
}

TEST(PolicyDifferential, CatchesFaultAcrossGeneratedCases)
{
    // The injected fault must also be visible to plain generated
    // cases, not just the handcrafted one: scan a few and expect at
    // least one divergence (cache pressure makes eviction order
    // matter in nearly every case).
    CaseProfile profile;
    profile.maxRequests = 400;
    profile.maxCacheBlocks = 32;
    int caught = 0;
    for (uint64_t i = 0; i < 6; ++i) {
        const FuzzCase c = makeCase(777, i, profile);
        test::NearestNextPolicy buggy;
        ReferenceBeladyPolicy ref;
        if (!checkPolicyDifferential(c, buggy, ref).passed)
            ++caught;
    }
    EXPECT_GT(caught, 0);
}

} // namespace
} // namespace pacache::qa
