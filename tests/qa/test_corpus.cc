#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "qa/fuzz_case.hh"
#include "qa/properties.hh"
#include "qa/trace_gen.hh"
#include "support/temp_dir.hh"

namespace pacache::qa
{
namespace
{

CorpusEntry
sampleEntry()
{
    CorpusEntry entry;
    entry.meta.property = "opg_matches_ref";
    entry.meta.preFixRev = "0307659";
    entry.meta.description = "sample reproducer";
    entry.fuzzCase = makeCase(5, 2);
    // Plant ulp-sensitive values: the format must round-trip bits,
    // not just decimals.
    entry.fuzzCase.cfg.theta = std::nextafter(29.6, 30.0);
    entry.fuzzCase.cfg.spec.idlePower = 1.0 / 3.0;
    if (entry.fuzzCase.trace.size() > 0) {
        TraceRecord rec = entry.fuzzCase.trace[0];
        rec.time = std::nextafter(rec.time, rec.time + 1);
        Trace t;
        t.append(rec);
        for (std::size_t i = 1; i < entry.fuzzCase.trace.size(); ++i)
            t.append(entry.fuzzCase.trace[i]);
        entry.fuzzCase.trace = std::move(t);
    }
    return entry;
}

void
expectSameCase(const CorpusEntry &a, const CorpusEntry &b)
{
    EXPECT_EQ(a.meta.property, b.meta.property);
    EXPECT_EQ(a.meta.preFixRev, b.meta.preFixRev);
    EXPECT_EQ(a.meta.description, b.meta.description);
    EXPECT_EQ(a.fuzzCase.seed, b.fuzzCase.seed);
    EXPECT_EQ(a.fuzzCase.cfg.cacheBlocks, b.fuzzCase.cfg.cacheBlocks);
    EXPECT_EQ(a.fuzzCase.cfg.policy, b.fuzzCase.cfg.policy);
    EXPECT_EQ(a.fuzzCase.cfg.dpmKind, b.fuzzCase.cfg.dpmKind);
    EXPECT_EQ(a.fuzzCase.cfg.dpm, b.fuzzCase.cfg.dpm);
    EXPECT_EQ(a.fuzzCase.cfg.writePolicy, b.fuzzCase.cfg.writePolicy);
    EXPECT_EQ(a.fuzzCase.cfg.wtduRegionBlocks,
              b.fuzzCase.cfg.wtduRegionBlocks);
    // Bit-exact doubles, not approximate.
    EXPECT_EQ(a.fuzzCase.cfg.theta, b.fuzzCase.cfg.theta);
    EXPECT_EQ(a.fuzzCase.cfg.crashStep, b.fuzzCase.cfg.crashStep);
    EXPECT_EQ(a.fuzzCase.cfg.paEpoch, b.fuzzCase.cfg.paEpoch);
    EXPECT_EQ(a.fuzzCase.cfg.spec.idlePower,
              b.fuzzCase.cfg.spec.idlePower);
    EXPECT_EQ(a.fuzzCase.cfg.spec.standbyPower,
              b.fuzzCase.cfg.spec.standbyPower);
    EXPECT_EQ(a.fuzzCase.cfg.spec.spinUpEnergy,
              b.fuzzCase.cfg.spec.spinUpEnergy);
    EXPECT_EQ(a.fuzzCase.cfg.spec.spinUpTime,
              b.fuzzCase.cfg.spec.spinUpTime);
    EXPECT_EQ(a.fuzzCase.cfg.spec.spinDownEnergy,
              b.fuzzCase.cfg.spec.spinDownEnergy);
    EXPECT_EQ(a.fuzzCase.cfg.spec.spinDownTime,
              b.fuzzCase.cfg.spec.spinDownTime);
    ASSERT_EQ(a.fuzzCase.trace.size(), b.fuzzCase.trace.size());
    for (std::size_t i = 0; i < a.fuzzCase.trace.size(); ++i)
        ASSERT_EQ(a.fuzzCase.trace[i], b.fuzzCase.trace[i])
            << "record " << i;
}

TEST(Corpus, RoundTripsThroughStreams)
{
    const CorpusEntry entry = sampleEntry();
    std::ostringstream os;
    writeCorpus(os, entry);
    std::istringstream is(os.str());
    const CorpusEntry back = readCorpus(is, "roundtrip");
    expectSameCase(entry, back);
}

class CorpusFiles : public test::TempDirTest
{
};

TEST_F(CorpusFiles, RoundTripsThroughFiles)
{
    const CorpusEntry entry = sampleEntry();
    const std::string file = path("case.corpus");
    writeCorpusFile(file, entry);
    const CorpusEntry back = readCorpusFile(file);
    expectSameCase(entry, back);
}

TEST_F(CorpusFiles, MissingFileIsFatal)
{
    EXPECT_THROW(readCorpusFile(path("absent.corpus")),
                 std::runtime_error);
}

CorpusEntry
parse(const std::string &text)
{
    std::istringstream is(text);
    return readCorpus(is, "inline");
}

std::string
validText()
{
    std::ostringstream os;
    writeCorpus(os, sampleEntry());
    return os.str();
}

TEST(Corpus, RejectsMissingHeader)
{
    EXPECT_THROW(parse("property: x\n"), std::runtime_error);
}

TEST(Corpus, RejectsUnknownKey)
{
    std::string text = validText();
    text.insert(text.find("property:"), "bogus_key: 1\n");
    EXPECT_THROW(parse(text), std::runtime_error);
}

TEST(Corpus, RejectsMalformedTraceRecord)
{
    std::string text = validText();
    const std::string anchor = "trace:\n";
    text.insert(text.find(anchor) + anchor.size(), "1.0 0 5\n");
    EXPECT_THROW(parse(text), std::runtime_error);
}

TEST(Corpus, RejectsMissingEnd)
{
    std::string text = validText();
    const std::size_t end = text.rfind("end");
    ASSERT_NE(end, std::string::npos);
    text.erase(end);
    EXPECT_THROW(parse(text), std::runtime_error);
}

// Every committed reproducer must parse, name a registered property,
// and replay green at HEAD (the documented bug is fixed). The ctest
// fuzz-smoke tier re-checks this through the pacache_fuzz binary;
// this in-suite copy keeps the guarantee under plain `ctest -L
// property` too.
TEST(Corpus, CommittedReproducersReplayGreen)
{
    const std::filesystem::path dir(PACACHE_QA_CORPUS_DIR);
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t count = 0;
    for (const auto &file : std::filesystem::directory_iterator(dir)) {
        if (file.path().extension() != ".corpus")
            continue;
        ++count;
        const CorpusEntry entry = readCorpusFile(file.path().string());
        EXPECT_FALSE(entry.meta.preFixRev.empty())
            << file.path() << ": reproducers must record the revision "
            << "they were found at";
        const PropertyDef *prop = findProperty(entry.meta.property);
        ASSERT_NE(prop, nullptr)
            << file.path() << " names unknown property "
            << entry.meta.property;
        const PropertyResult result =
            runProperty(*prop, entry.fuzzCase);
        EXPECT_TRUE(result.passed)
            << file.path() << ": " << result.message;
    }
    EXPECT_GT(count, 0u) << "no committed corpus files found";
}

} // namespace
} // namespace pacache::qa
