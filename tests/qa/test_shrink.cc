#include <gtest/gtest.h>

#include <algorithm>

#include "cache/belady_ref.hh"
#include "qa/properties.hh"
#include "qa/shrink.hh"
#include "qa/trace_gen.hh"
#include "support/faulty_belady.hh"

namespace pacache::qa
{
namespace
{

bool
hasBlock(const FuzzCase &c, BlockNum block)
{
    for (std::size_t i = 0; i < c.trace.size(); ++i)
        if (c.trace[i].block == block)
            return true;
    return false;
}

FuzzCase
noisyCase()
{
    FuzzCase c;
    c.cfg.cacheBlocks = 64;
    c.cfg.crashStep = 17;
    c.cfg.theta = 29.6;
    c.cfg.wtduRegionBlocks = 32;
    for (int i = 0; i < 100; ++i)
        c.trace.append({static_cast<Time>(i), 0,
                        static_cast<BlockNum>(i == 57 ? 42 : 1000 + i),
                        3, i % 2 == 0});
    return c;
}

TEST(Shrink, ReducesToTheSingleRelevantRecord)
{
    const FuzzCase failing = noisyCase();
    const FailFn predicate = [](const FuzzCase &c) {
        return hasBlock(c, 42);
    };
    ASSERT_TRUE(predicate(failing));

    ShrinkStats stats;
    const FuzzCase shrunk = shrinkCase(failing, predicate, 2000, &stats);

    EXPECT_TRUE(predicate(shrunk));
    EXPECT_EQ(shrunk.trace.size(), 1u);
    EXPECT_EQ(shrunk.trace[0].block, 42u);
    EXPECT_GT(stats.attempts, 0u);
    EXPECT_GT(stats.accepted, 0u);
}

TEST(Shrink, SimplifiesSurvivingRecordsAndConfig)
{
    const FuzzCase failing = noisyCase();
    const FailFn predicate = [](const FuzzCase &c) {
        return hasBlock(c, 42);
    };
    const FuzzCase shrunk = shrinkCase(failing, predicate);

    // The surviving record is simplified to the smallest shape that
    // still fails: single-block read.
    ASSERT_EQ(shrunk.trace.size(), 1u);
    EXPECT_EQ(shrunk.trace[0].numBlocks, 1u);
    EXPECT_FALSE(shrunk.trace[0].write);
    // Config knobs irrelevant to the failure collapse too.
    EXPECT_EQ(shrunk.cfg.cacheBlocks, 1u);
    EXPECT_EQ(shrunk.cfg.crashStep, 0u);
    EXPECT_EQ(shrunk.cfg.theta, 0.0);
}

TEST(Shrink, PreservesTimeMonotonicityThroughout)
{
    const FuzzCase failing = noisyCase();
    const FailFn predicate = [](const FuzzCase &c) {
        // Reject any non-monotone intermediate outright: returning
        // false on violation means a buggy shrinker would get stuck
        // above 3 records, which the final assertion would catch.
        Time prev = 0;
        for (std::size_t i = 0; i < c.trace.size(); ++i) {
            if (c.trace[i].time < prev)
                return false;
            prev = c.trace[i].time;
        }
        std::size_t hits = 0;
        for (std::size_t i = 0; i < c.trace.size(); ++i)
            if (c.trace[i].block >= 1000)
                ++hits;
        return hits >= 3;
    };
    ASSERT_TRUE(predicate(failing));
    const FuzzCase shrunk = shrinkCase(failing, predicate);
    EXPECT_TRUE(predicate(shrunk));
    EXPECT_EQ(shrunk.trace.size(), 3u);
}

// The PR's acceptance scenario end to end: a deliberately injected
// fault (Belady evicting nearest-next instead of furthest) is caught
// by the differential property harness and shrunk to a tiny trace.
TEST(Shrink, InjectedBeladyFaultShrinksToAtMostTwentyRecords)
{
    const FailFn showsFault = [](const FuzzCase &c) {
        test::NearestNextPolicy buggy;
        ReferenceBeladyPolicy ref;
        return !checkPolicyDifferential(c, buggy, ref).passed;
    };

    // Find a generated case that exposes the fault.
    CaseProfile profile;
    profile.maxRequests = 600;
    profile.maxCacheBlocks = 32;
    FuzzCase failing;
    bool found = false;
    for (uint64_t i = 0; i < 10 && !found; ++i) {
        failing = makeCase(4242, i, profile);
        found = showsFault(failing);
    }
    ASSERT_TRUE(found) << "no generated case exposed the fault";
    const std::size_t before = failing.trace.size();

    ShrinkStats stats;
    const FuzzCase shrunk =
        shrinkCase(failing, showsFault, 4000, &stats);

    EXPECT_TRUE(showsFault(shrunk));
    EXPECT_LE(shrunk.trace.size(), 20u)
        << "shrunk from " << before << " records in "
        << stats.attempts << " attempts";
    EXPECT_LT(shrunk.trace.size(), before);
}

} // namespace
} // namespace pacache::qa
