#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "qa/gen.hh"
#include "qa/trace_gen.hh"

namespace pacache::qa
{
namespace
{

TEST(DeriveSeed, DistinctIndicesGiveDistinctStreams)
{
    std::set<uint64_t> seeds;
    for (uint64_t i = 0; i < 1000; ++i)
        seeds.insert(deriveSeed(42, i));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, AdjacentMastersDecorrelate)
{
    // Neighboring master seeds must not produce overlapping derived
    // streams (a naive master+index scheme would).
    std::set<uint64_t> a, b;
    for (uint64_t i = 0; i < 200; ++i) {
        a.insert(deriveSeed(7, i));
        b.insert(deriveSeed(8, i));
    }
    std::vector<uint64_t> overlap;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
}

TEST(Gen, IntInCoversInclusiveRange)
{
    Rng rng(1);
    const Gen<uint64_t> g = intIn(3, 6);
    std::set<uint64_t> seen;
    for (int i = 0; i < 400; ++i) {
        const uint64_t v = g(rng);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all four values should appear";
}

TEST(Gen, RealInStaysInRange)
{
    Rng rng(2);
    const Gen<double> g = realIn(-1.5, 2.5);
    for (int i = 0; i < 400; ++i) {
        const double v = g(rng);
        ASSERT_GE(v, -1.5);
        ASSERT_LT(v, 2.5);
    }
}

TEST(Gen, ElementOfOnlyYieldsChoices)
{
    Rng rng(3);
    const Gen<int> g = elementOf<int>({10, 20, 30});
    std::set<int> seen;
    for (int i = 0; i < 300; ++i)
        seen.insert(g(rng));
    EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Gen, FrequencyRespectsWeights)
{
    Rng rng(4);
    const Gen<int> g = frequency<int>(
        {{9.0, constant(1)}, {1.0, constant(2)}});
    int ones = 0;
    for (int i = 0; i < 2000; ++i)
        if (g(rng) == 1)
            ++ones;
    // ~90% with generous slack.
    EXPECT_GT(ones, 1600);
    EXPECT_LT(ones, 2000);
}

TEST(Gen, MapAndThenCompose)
{
    Rng rng(5);
    const Gen<uint64_t> doubled =
        intIn(1, 4).map([](uint64_t v) { return v * 2; });
    for (int i = 0; i < 100; ++i) {
        const uint64_t v = doubled(rng);
        ASSERT_EQ(v % 2, 0u);
        ASSERT_GE(v, 2u);
        ASSERT_LE(v, 8u);
    }
    const Gen<uint64_t> dependent = intIn(0, 1).then(
        [](uint64_t coin) { return coin ? intIn(100, 100) : intIn(0, 0); });
    for (int i = 0; i < 100; ++i) {
        const uint64_t v = dependent(rng);
        ASSERT_TRUE(v == 0 || v == 100) << v;
    }
}

TEST(Gen, VectorOfDrawsLengthFromSizeGen)
{
    Rng rng(6);
    const auto g = vectorOf(intIn(0, 9), intIn(2, 5));
    for (int i = 0; i < 100; ++i) {
        const std::vector<uint64_t> v = g(rng);
        ASSERT_GE(v.size(), 2u);
        ASSERT_LE(v.size(), 5u);
    }
}

TEST(TraceGen, MakeCaseIsDeterministic)
{
    const FuzzCase a = makeCase(99, 3);
    const FuzzCase b = makeCase(99, 3);
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        ASSERT_EQ(a.trace[i], b.trace[i]) << "record " << i;
    EXPECT_EQ(a.cfg.cacheBlocks, b.cfg.cacheBlocks);
    EXPECT_EQ(a.cfg.policy, b.cfg.policy);
    EXPECT_EQ(a.cfg.dpm, b.cfg.dpm);
    EXPECT_EQ(a.cfg.writePolicy, b.cfg.writePolicy);
    EXPECT_EQ(a.cfg.theta, b.cfg.theta);
    EXPECT_EQ(a.cfg.spec.idlePower, b.cfg.spec.idlePower);
    EXPECT_EQ(a.cfg.spec.spinUpEnergy, b.cfg.spec.spinUpEnergy);
}

TEST(TraceGen, DistinctIndicesGiveDistinctCases)
{
    const FuzzCase a = makeCase(99, 0);
    const FuzzCase b = makeCase(99, 1);
    EXPECT_NE(a.seed, b.seed);
    const bool differ =
        a.trace.size() != b.trace.size() ||
        a.cfg.cacheBlocks != b.cfg.cacheBlocks ||
        (a.trace.size() > 0 && !(a.trace[0] == b.trace[0]));
    EXPECT_TRUE(differ);
}

TEST(TraceGen, CasesRespectProfileBounds)
{
    CaseProfile profile;
    profile.minRequests = 50;
    profile.maxRequests = 80;
    profile.minDisks = 2;
    profile.maxDisks = 3;
    profile.minCacheBlocks = 8;
    profile.maxCacheBlocks = 16;
    for (uint64_t i = 0; i < 25; ++i) {
        const FuzzCase c = makeCase(7, i, profile);
        ASSERT_GE(c.trace.size(), 50u);
        ASSERT_LE(c.trace.size(), 80u);
        ASSERT_GE(c.cfg.cacheBlocks, 8u);
        ASSERT_LE(c.cfg.cacheBlocks, 16u);
        for (std::size_t r = 0; r < c.trace.size(); ++r)
            ASSERT_LT(c.trace[r].disk, 3u);
    }
}

TEST(TraceGen, TracesAreTimeOrderedAndValid)
{
    for (uint64_t i = 0; i < 25; ++i) {
        const FuzzCase c = makeCase(13, i);
        Time prev = 0;
        for (std::size_t r = 0; r < c.trace.size(); ++r) {
            const TraceRecord &rec = c.trace[r];
            ASSERT_GE(rec.time, prev) << "record " << r;
            ASSERT_GE(rec.numBlocks, 1u);
            ASSERT_LT(rec.block, 1ULL << 48) << "packed-key limit";
            prev = rec.time;
        }
    }
}

TEST(TraceGen, SweepExercisesTheConfigSpace)
{
    // 200 cases should hit every policy, write policy and DPM choice;
    // a generator bug that pins a dimension would show up here.
    std::set<int> policies, writes, dpms, kinds;
    std::set<uint32_t> disks;
    bool sawTheta = false;
    for (uint64_t i = 0; i < 200; ++i) {
        const FuzzCase c = makeCase(21, i);
        policies.insert(static_cast<int>(c.cfg.policy));
        writes.insert(static_cast<int>(c.cfg.writePolicy));
        dpms.insert(static_cast<int>(c.cfg.dpm));
        kinds.insert(static_cast<int>(c.cfg.dpmKind));
        uint32_t maxDisk = 0;
        for (std::size_t r = 0; r < c.trace.size(); ++r)
            maxDisk = std::max(maxDisk, c.trace[r].disk);
        disks.insert(maxDisk + 1);
        if (c.cfg.theta > 0)
            sawTheta = true;
    }
    EXPECT_GE(policies.size(), 8u);
    EXPECT_EQ(writes.size(), 4u);
    EXPECT_EQ(dpms.size(), 4u);
    EXPECT_EQ(kinds.size(), 2u);
    EXPECT_GE(disks.size(), 3u);
    EXPECT_TRUE(sawTheta) << "nonzero theta never generated";
}

TEST(TraceGen, GeneratedSpecsBuildValidPowerModels)
{
    Rng rng(31);
    const Gen<DiskSpec> g = genDiskSpec();
    for (int i = 0; i < 50; ++i) {
        const DiskSpec spec = g(rng);
        const PowerModel pm(spec);
        ASSERT_GE(pm.numModes(), 2u);
        // Thresholds must strictly ascend for the mode tables to be
        // well-formed.
        const std::vector<Time> &th = pm.thresholds();
        for (std::size_t t = 1; t < th.size(); ++t)
            ASSERT_LT(th[t - 1], th[t]);
    }
}

} // namespace
} // namespace pacache::qa
