#include <gtest/gtest.h>

#include "stats/energy_stats.hh"
#include "stats/response_stats.hh"

namespace pacache
{
namespace
{

TEST(EnergyStatsTest, TotalsSumAllParts)
{
    EnergyStats s(3);
    s.idleEnergyPerMode = {10.0, 20.0, 30.0};
    s.timePerMode = {1.0, 2.0, 3.0};
    s.serviceEnergy = 5.0;
    s.busyTime = 0.5;
    s.spinUpEnergy = 7.0;
    s.spinDownEnergy = 2.0;
    s.spinUpTime = 0.25;
    s.spinDownTime = 0.25;
    EXPECT_DOUBLE_EQ(s.total(), 74.0);
    EXPECT_DOUBLE_EQ(s.totalTime(), 7.0);
    EXPECT_DOUBLE_EQ(s.transitionTime(), 0.5);
}

TEST(EnergyStatsTest, AccumulateMergesEverything)
{
    EnergyStats a(2), b(2);
    a.idleEnergyPerMode = {1.0, 2.0};
    b.idleEnergyPerMode = {10.0, 20.0};
    a.spinUps = 3;
    b.spinUps = 4;
    a.requests = 7;
    b.requests = 5;
    a += b;
    EXPECT_DOUBLE_EQ(a.idleEnergyPerMode[0], 11.0);
    EXPECT_DOUBLE_EQ(a.idleEnergyPerMode[1], 22.0);
    EXPECT_EQ(a.spinUps, 7u);
    EXPECT_EQ(a.requests, 12u);
}

TEST(EnergyStatsTest, AccumulateGrowsModeVector)
{
    EnergyStats a(1), b(3);
    b.idleEnergyPerMode = {1.0, 2.0, 3.0};
    a += b;
    ASSERT_EQ(a.idleEnergyPerMode.size(), 3u);
    EXPECT_DOUBLE_EQ(a.idleEnergyPerMode[2], 3.0);
}

TEST(ResponseStatsTest, EmptyIsZero)
{
    ResponseStats r;
    EXPECT_EQ(r.count(), 0u);
    EXPECT_DOUBLE_EQ(r.mean(), 0.0);
    EXPECT_DOUBLE_EQ(r.max(), 0.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
}

TEST(ResponseStatsTest, MeanMaxPercentiles)
{
    ResponseStats r;
    for (int i = 1; i <= 100; ++i)
        r.record(static_cast<Time>(i));
    EXPECT_EQ(r.count(), 100u);
    EXPECT_DOUBLE_EQ(r.mean(), 50.5);
    EXPECT_DOUBLE_EQ(r.max(), 100.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(r.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
}

TEST(ResponseStatsTest, PercentileWorksAfterMoreRecords)
{
    // The lazy sort must be invalidated by later records.
    ResponseStats r;
    r.record(5.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.5), 5.0);
    r.record(1.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
}

TEST(ResponseStatsTest, MergeCombinesSamples)
{
    ResponseStats a, b;
    a.record(1.0);
    a.record(2.0);
    b.record(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_NEAR(a.mean(), 13.0 / 3.0, 1e-12);
}

} // namespace
} // namespace pacache
