#include <gtest/gtest.h>

#include <sstream>

#include "../obs/json_check.hh"
#include "stats/energy_stats.hh"
#include "stats/response_stats.hh"

namespace pacache
{
namespace
{

TEST(EnergyStatsTest, TotalsSumAllParts)
{
    EnergyStats s(3);
    s.idleEnergyPerMode = {10.0, 20.0, 30.0};
    s.timePerMode = {1.0, 2.0, 3.0};
    s.serviceEnergy = 5.0;
    s.busyTime = 0.5;
    s.spinUpEnergy = 7.0;
    s.spinDownEnergy = 2.0;
    s.spinUpTime = 0.25;
    s.spinDownTime = 0.25;
    EXPECT_DOUBLE_EQ(s.total(), 74.0);
    EXPECT_DOUBLE_EQ(s.totalTime(), 7.0);
    EXPECT_DOUBLE_EQ(s.transitionTime(), 0.5);
}

TEST(EnergyStatsTest, AccumulateMergesEverything)
{
    EnergyStats a(2), b(2);
    a.idleEnergyPerMode = {1.0, 2.0};
    b.idleEnergyPerMode = {10.0, 20.0};
    a.spinUps = 3;
    b.spinUps = 4;
    a.requests = 7;
    b.requests = 5;
    a += b;
    EXPECT_DOUBLE_EQ(a.idleEnergyPerMode[0], 11.0);
    EXPECT_DOUBLE_EQ(a.idleEnergyPerMode[1], 22.0);
    EXPECT_EQ(a.spinUps, 7u);
    EXPECT_EQ(a.requests, 12u);
}

TEST(EnergyStatsTest, AccumulateGrowsModeVector)
{
    EnergyStats a(1), b(3);
    b.idleEnergyPerMode = {1.0, 2.0, 3.0};
    a += b;
    ASSERT_EQ(a.idleEnergyPerMode.size(), 3u);
    EXPECT_DOUBLE_EQ(a.idleEnergyPerMode[2], 3.0);
}

TEST(ResponseStatsTest, EmptyIsZero)
{
    ResponseStats r;
    EXPECT_EQ(r.count(), 0u);
    EXPECT_DOUBLE_EQ(r.mean(), 0.0);
    EXPECT_DOUBLE_EQ(r.max(), 0.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
}

TEST(ResponseStatsTest, MeanMaxPercentiles)
{
    ResponseStats r;
    for (int i = 1; i <= 100; ++i)
        r.record(static_cast<Time>(i));
    EXPECT_EQ(r.count(), 100u);
    EXPECT_DOUBLE_EQ(r.mean(), 50.5);
    EXPECT_DOUBLE_EQ(r.max(), 100.0);
    // Percentiles come from the log-bucketed histogram: within 1%
    // of the exact nearest-rank sample, with the extremes pinned to
    // the exact min/max by the clamp.
    EXPECT_NEAR(r.percentile(0.5), 50.0, 0.5);
    EXPECT_NEAR(r.percentile(0.95), 95.0, 0.95);
    EXPECT_DOUBLE_EQ(r.percentile(1.0), 100.0);
    EXPECT_NEAR(r.percentile(0.0), 1.0, 0.01);
}

TEST(ResponseStatsTest, PercentileWorksAfterMoreRecords)
{
    // Percentiles must reflect samples recorded after earlier
    // percentile queries.
    ResponseStats r;
    r.record(5.0);
    EXPECT_DOUBLE_EQ(r.percentile(0.5), 5.0);
    r.record(1.0);
    EXPECT_NEAR(r.percentile(0.0), 1.0, 0.01);
}

TEST(ResponseStatsTest, MergeCombinesSamples)
{
    ResponseStats a, b;
    a.record(1.0);
    a.record(2.0);
    b.record(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_NEAR(a.mean(), 13.0 / 3.0, 1e-12);
}

TEST(EnergyStatsTest, WriteJsonRoundTripsTheBreakdown)
{
    EnergyStats s(2);
    s.idleEnergyPerMode = {10.0, 20.0};
    s.timePerMode = {1.0, 2.0};
    s.serviceEnergy = 5.0;
    s.busyTime = 0.5;
    s.spinUpEnergy = 7.0;
    s.spinDownEnergy = 2.0;
    s.spinUps = 3;
    s.spinDowns = 4;
    s.requests = 11;

    std::ostringstream os;
    const std::vector<std::string> modes{"idle", "standby"};
    s.writeJson(os, &modes);
    const testjson::Value doc = pacache::testjson::parse(os.str());
    EXPECT_DOUBLE_EQ(doc.at("total_joules").number, s.total());
    EXPECT_DOUBLE_EQ(doc.at("service_joules").number, 5.0);
    EXPECT_DOUBLE_EQ(
        doc.at("idle_energy_per_mode_j").at("idle").number, 10.0);
    EXPECT_DOUBLE_EQ(
        doc.at("idle_energy_per_mode_j").at("standby").number, 20.0);
    EXPECT_DOUBLE_EQ(doc.at("time_per_mode_s").at("standby").number,
                     2.0);
    EXPECT_DOUBLE_EQ(doc.at("spinups").number, 3.0);
    EXPECT_DOUBLE_EQ(doc.at("requests").number, 11.0);
}

TEST(EnergyStatsTest, WriteJsonWithoutModeNamesUsesArrays)
{
    EnergyStats s(2);
    s.idleEnergyPerMode = {1.0, 2.0};

    std::ostringstream os;
    s.writeJson(os);
    const testjson::Value doc = pacache::testjson::parse(os.str());
    ASSERT_TRUE(doc.at("idle_energy_per_mode_j").isArray());
    ASSERT_EQ(doc.at("idle_energy_per_mode_j").items.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.at("idle_energy_per_mode_j").items[1]->number,
                     2.0);
}

TEST(EnergyStatsTest, StreamOperatorSummarizes)
{
    EnergyStats s(1);
    s.idleEnergyPerMode = {4.0};
    s.serviceEnergy = 6.0;
    s.spinUps = 2;

    std::ostringstream os;
    os << s;
    EXPECT_NE(os.str().find("energy 10 J"), std::string::npos);
    EXPECT_NE(os.str().find("2 spin-ups"), std::string::npos);
}

TEST(ResponseStatsTest, WriteJsonReportsPercentilesAndSum)
{
    ResponseStats r;
    for (int i = 1; i <= 100; ++i)
        r.record(static_cast<double>(i));

    std::ostringstream os;
    r.writeJson(os);
    const testjson::Value doc = pacache::testjson::parse(os.str());
    EXPECT_DOUBLE_EQ(doc.at("count").number, 100.0);
    EXPECT_DOUBLE_EQ(doc.at("sum_s").number, 5050.0);
    EXPECT_DOUBLE_EQ(doc.at("mean_ms").number, 50.5 * 1e3);
    EXPECT_NEAR(doc.at("p50_ms").number, 50.0 * 1e3, 500.0);
    EXPECT_NEAR(doc.at("p95_ms").number, 95.0 * 1e3, 950.0);
    EXPECT_DOUBLE_EQ(doc.at("max_s").number, 100.0);
}

TEST(ResponseStatsTest, StreamOperatorSummarizes)
{
    ResponseStats r;
    r.record(2.0);

    std::ostringstream os;
    os << r;
    EXPECT_NE(os.str().find("1 responses"), std::string::npos);
    EXPECT_NE(os.str().find("max 2 s"), std::string::npos);
}

} // namespace
} // namespace pacache
