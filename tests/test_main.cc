/**
 * @file
 * gtest entry point; silences info/warn noise during tests.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    pacache::setQuietLogging(true);
    return RUN_ALL_TESTS();
}
