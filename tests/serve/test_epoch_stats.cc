#include <gtest/gtest.h>

#include "core/pa_classifier.hh"

namespace pacache
{
namespace
{

PaParams
testParams()
{
    PaParams p;
    p.coldMissThreshold = 0.5;
    p.cumulativeProb = 0.8;
    p.intervalThreshold = 10.0;
    p.minEpochSamples = 2;
    return p;
}

TEST(PaEpochStats, AccumulatesPerDisk)
{
    PaEpochStats stats(2);
    stats.noteRequest(0, true);
    stats.noteRequest(0, false);
    stats.noteRequest(1, false);
    stats.noteInterval(0, 5.0);
    EXPECT_EQ(stats.disk(0).accesses, 2u);
    EXPECT_EQ(stats.disk(0).cold, 1u);
    EXPECT_EQ(stats.disk(0).intervals.sampleCount(), 1u);
    EXPECT_EQ(stats.disk(1).accesses, 1u);
    EXPECT_EQ(stats.disk(1).cold, 0u);
    stats.reset();
    EXPECT_EQ(stats.disk(0).accesses, 0u);
    EXPECT_EQ(stats.disk(0).intervals.sampleCount(), 0u);
}

TEST(PaEpochStats, MergeIsCommutativeAndExact)
{
    PaEpochStats a(1);
    PaEpochStats b(1);
    PaEpochStats interleaved(1);
    for (int i = 0; i < 10; ++i) {
        const bool cold = i % 3 == 0;
        const double interval = 1.0 + i;
        PaEpochStats &half = i % 2 == 0 ? a : b;
        half.noteRequest(0, cold);
        half.noteInterval(0, interval);
        interleaved.noteRequest(0, cold);
        interleaved.noteInterval(0, interval);
    }
    PaEpochStats ab(1);
    ab.merge(a);
    ab.merge(b);
    PaEpochStats ba(1);
    ba.merge(b);
    ba.merge(a);
    for (const PaEpochStats *merged : {&ab, &ba}) {
        EXPECT_EQ(merged->disk(0).accesses,
                  interleaved.disk(0).accesses);
        EXPECT_EQ(merged->disk(0).cold, interleaved.disk(0).cold);
        EXPECT_EQ(merged->disk(0).intervals.counts(),
                  interleaved.disk(0).intervals.counts());
        EXPECT_EQ(merged->disk(0).intervals.quantile(0.8),
                  interleaved.disk(0).intervals.quantile(0.8));
    }
}

TEST(ClassifyDiskEpoch, TooFewAccessesStaysUndecided)
{
    PaEpochStats stats(1);
    stats.noteRequest(0, false);
    const PaClassification c =
        classifyDiskEpoch(stats.disk(0), testParams());
    EXPECT_FALSE(c.decided);
}

TEST(ClassifyDiskEpoch, LongIdleColdBelowAlphaIsPriority)
{
    PaEpochStats stats(1);
    for (int i = 0; i < 10; ++i) {
        stats.noteRequest(0, i == 0); // 10% cold
        stats.noteInterval(0, 100.0); // way past the threshold
    }
    const PaClassification c =
        classifyDiskEpoch(stats.disk(0), testParams());
    EXPECT_TRUE(c.decided);
    EXPECT_TRUE(c.haveQuantile);
    EXPECT_TRUE(c.priority);
    EXPECT_DOUBLE_EQ(c.coldFraction, 0.1);
    EXPECT_GE(c.quantile, 10.0);
}

TEST(ClassifyDiskEpoch, MostlyColdIsRegular)
{
    PaEpochStats stats(1);
    for (int i = 0; i < 10; ++i) {
        stats.noteRequest(0, true); // all cold
        stats.noteInterval(0, 100.0);
    }
    const PaClassification c =
        classifyDiskEpoch(stats.disk(0), testParams());
    EXPECT_TRUE(c.decided);
    EXPECT_FALSE(c.priority);
}

TEST(ClassifyDiskEpoch, ShortIdleIntervalsAreRegular)
{
    PaEpochStats stats(1);
    for (int i = 0; i < 10; ++i) {
        stats.noteRequest(0, false);
        stats.noteInterval(0, 0.5); // below the 10 s threshold
    }
    const PaClassification c =
        classifyDiskEpoch(stats.disk(0), testParams());
    EXPECT_TRUE(c.decided);
    EXPECT_TRUE(c.haveQuantile);
    EXPECT_FALSE(c.priority);
}

TEST(ClassifyDiskEpoch, CacheAbsorbedDiskJudgedOnColdFractionAlone)
{
    PaEpochStats stats(1);
    stats.noteRequest(0, false);
    stats.noteRequest(0, false); // accesses but zero disk intervals
    const PaClassification c =
        classifyDiskEpoch(stats.disk(0), testParams());
    EXPECT_TRUE(c.decided);
    EXPECT_FALSE(c.haveQuantile);
    EXPECT_TRUE(c.priority);
}

} // namespace
} // namespace pacache
