/**
 * @file
 * Serve-mode WTDU crash coverage (DESIGN.md 5j): the per-stripe log
 * image after a clean shutdown — and after a power failure injected
 * at shutdown — must be bit-identical to the single-threaded replay's
 * at one stripe, and recovery over the frozen image must replay the
 * same write sequence either way.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/lru.hh"
#include "core/fault.hh"
#include "core/storage_system.hh"
#include "disk/disk_array.hh"
#include "disk/dpm.hh"
#include "qa/crash.hh"
#include "serve/server.hh"
#include "trace/synthetic.hh"
#include "trace/trace.hh"

namespace pacache::serve
{
namespace
{

Trace
writeHeavyTrace(uint64_t seed = 11)
{
    SyntheticParams p;
    p.numRequests = 1500;
    p.numDisks = 4;
    p.writeRatio = 0.7;
    p.seed = seed;
    return generateSynthetic(p);
}

ExperimentConfig
wtduConfig()
{
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::LRU;
    cfg.dpm = DpmChoice::Practical;
    cfg.storage.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    cfg.cacheBlocks = 128;
    cfg.storage.wtduRegionBlocks = 32;
    return cfg;
}

/** A single-threaded replay rig that exposes its WTDU log. */
struct ReplayRig
{
    PowerModel pm;
    ServiceModel sm;
    EventQueue eq;
    AlwaysOnDpm alwaysOn;
    PracticalDpm practical;
    LruPolicy policy;
    Cache cache;
    DiskArray disks;
    Disk logDisk;
    StorageSystem system;

    ReplayRig(const Trace &trace, const ExperimentConfig &cfg,
              std::size_t num_disks, FaultInjector *inj = nullptr)
        : pm(cfg.spec), sm(cfg.spec, cfg.service), practical(pm),
          cache(cfg.cacheBlocks, policy),
          disks(num_disks, eq, pm, sm, practical, cfg.disk),
          logDisk(static_cast<DiskId>(num_disks), eq, pm, sm, alwaysOn,
                  DiskOptions{}),
          system(trace, eq, cache, disks,
                 [&] {
                     StorageConfig scfg = cfg.storage;
                     scfg.fault = inj;
                     return scfg;
                 }(),
                 nullptr, &logDisk)
    {
    }
};

/** Run @p trace through a one-stripe serve server; @p inj may arm a
 *  Shutdown-site crash, in which case finish() throws. */
ServeServer
makeServer(const Trace &trace, const ExperimentConfig &cfg,
           FaultInjector *inj)
{
    ServeConfig sc;
    sc.exp = cfg;
    sc.exp.storage.fault = inj;
    sc.shards = 1;
    sc.threads = 1;
    sc.ringCapacity = 256;
    sc.batch = 16;
    sc.numDisks = std::max<std::size_t>(trace.numDisks(), 1);
    return ServeServer(sc);
}

void
driveTrace(ServeServer &server, const Trace &trace)
{
    server.start();
    const std::vector<BlockAccess> accesses = expandTrace(trace);
    ServeRequest req;
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const BlockAccess &acc = accesses[i];
        req.time = acc.time;
        req.block = acc.block;
        req.write = acc.write;
        req.traceIndex = acc.traceIndex;
        req.idx = i;
        req.submitNs = 0;
        server.submit(req);
    }
}

void
expectSameLogImage(const WtduLog &a, const WtduLog &b)
{
    ASSERT_EQ(a.numDisks(), b.numDisks());
    ASSERT_EQ(a.regionBlocks(), b.regionBlocks());
    for (DiskId d = 0; d < a.numDisks(); ++d) {
        EXPECT_EQ(a.timestamp(d), b.timestamp(d)) << "disk " << d;
        EXPECT_EQ(a.used(d), b.used(d)) << "disk " << d;
        const auto &sa = a.entries(d);
        const auto &sb = b.entries(d);
        ASSERT_EQ(sa.size(), sb.size()) << "disk " << d;
        for (std::size_t i = 0; i < sa.size(); ++i)
            EXPECT_TRUE(sa[i] == sb[i])
                << "disk " << d << " slot " << i;
    }
}

std::vector<std::pair<DiskId, uint64_t>>
recoverySequence(WtduLog log)
{
    log.setFaultInjector(nullptr);
    std::vector<std::pair<DiskId, uint64_t>> seq;
    log.recoverAll([&](DiskId d, const WtduLog::Entry &e) {
        seq.emplace_back(d, e.version);
    });
    return seq;
}

TEST(ServeCrash, CleanShutdownLogMatchesReplay)
{
    const Trace trace = writeHeavyTrace();
    const ExperimentConfig cfg = wtduConfig();

    ReplayRig rig(trace, cfg, trace.numDisks());
    rig.system.run();
    ASSERT_NE(rig.system.wtduLog(), nullptr);

    ServeServer server = makeServer(trace, cfg, nullptr);
    driveTrace(server, trace);
    server.finish(trace.endTime());

    ASSERT_NE(server.shardWtduLog(0), nullptr);
    expectSameLogImage(*server.shardWtduLog(0), *rig.system.wtduLog());
}

TEST(ServeCrash, CrashAtShutdownFreezesLogIdenticallyToReplay)
{
    const Trace trace = writeHeavyTrace();
    const ExperimentConfig cfg = wtduConfig();

    CrashPlan plan;
    plan.armed = true;
    plan.site = CrashSite::Shutdown;
    plan.occurrence = 0;
    plan.surviveProb = 0.0;

    qa::CrashInjector replayInj(plan);
    ReplayRig rig(trace, cfg, trace.numDisks(), &replayInj);
    EXPECT_THROW(rig.system.run(), CrashException);
    ASSERT_TRUE(replayInj.crashed());

    qa::CrashInjector serveInj(plan);
    ServeServer server = makeServer(trace, cfg, &serveInj);
    driveTrace(server, trace);
    EXPECT_THROW(server.finish(trace.endTime()), CrashException);
    ASSERT_TRUE(serveInj.crashed());

    // The power failure froze both log images at the same instant;
    // at one stripe they must be bit-identical, and recovery over
    // either must replay the same write sequence.
    const WtduLog *serveLog = server.shardWtduLog(0);
    const WtduLog *replayLog = rig.system.wtduLog();
    ASSERT_NE(serveLog, nullptr);
    ASSERT_NE(replayLog, nullptr);
    expectSameLogImage(*serveLog, *replayLog);
    EXPECT_EQ(recoverySequence(*serveLog), recoverySequence(*replayLog));
}

TEST(ServeCrash, CrashAtShutdownDiffersFromCleanShutdown)
{
    // The crash fires before the final drain, so writes still in the
    // current log generation (or in flight) distinguish the frozen
    // image from the fully drained clean-shutdown one whenever the
    // trace ends with logged writes. This guards against the
    // Shutdown site silently moving after the drain, where a "crash"
    // would be indistinguishable from a clean exit.
    const Trace trace = writeHeavyTrace(23);
    const ExperimentConfig cfg = wtduConfig();

    ReplayRig clean(trace, cfg, trace.numDisks());
    clean.system.run();

    CrashPlan plan;
    plan.armed = true;
    plan.site = CrashSite::Shutdown;
    plan.occurrence = 0;
    plan.surviveProb = 0.0;
    qa::CrashInjector inj(plan);
    ReplayRig crashed(trace, cfg, trace.numDisks(), &inj);
    EXPECT_THROW(crashed.system.run(), CrashException);

    // Whatever the trace shape, the crashed image can only carry at
    // least as many un-retired entries as the drained one; both
    // recover cleanly.
    const WtduLog *a = crashed.system.wtduLog();
    const WtduLog *b = clean.system.wtduLog();
    std::size_t liveCrashed = 0, liveClean = 0;
    for (DiskId d = 0; d < a->numDisks(); ++d) {
        liveCrashed += a->recover(d).size();
        liveClean += b->recover(d).size();
    }
    EXPECT_GE(liveCrashed, liveClean);
}

} // namespace
} // namespace pacache::serve
