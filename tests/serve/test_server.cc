#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/experiment.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "trace/synthetic.hh"
#include "trace/trace.hh"

namespace pacache::serve
{
namespace
{

Trace
smallTrace(uint64_t seed = 7)
{
    SyntheticParams p;
    p.numRequests = 3000;
    p.numDisks = 6;
    p.writeRatio = 0.3;
    p.seed = seed;
    return generateSynthetic(p);
}

ExperimentConfig
kernelConfig()
{
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::PALRU;
    cfg.dpm = DpmChoice::Practical;
    cfg.storage.writePolicy = WritePolicy::WriteBack;
    cfg.cacheBlocks = 256;
    return cfg;
}

void
expectSameCounters(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.cache.accesses, b.cache.accesses);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.cache.evictions, b.cache.evictions);
    EXPECT_EQ(a.cache.coldMisses, b.cache.coldMisses);
    EXPECT_EQ(a.logWrites, b.logWrites);
    EXPECT_EQ(a.energy.spinUps, b.energy.spinUps);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
}

TEST(ServeServer, SingleShardReplayMatchesExperimentAtAnyThreadCount)
{
    const Trace trace = smallTrace();
    const ExperimentConfig cfg = kernelConfig();
    const ExperimentResult ref = runExperiment(trace, cfg);

    for (const std::size_t threads : {1, 2, 4}) {
        ServeConfig sc;
        sc.exp = cfg;
        sc.shards = 1;
        sc.threads = threads;
        const ServeResult res = ServeServer::replayTrace(trace, sc);
        expectSameCounters(res.result, ref);
        EXPECT_TRUE(res.ledgerConserves);
    }
}

TEST(ServeServer, ShardedReplayIsThreadInvariant)
{
    const Trace trace = smallTrace();
    ServeConfig sc;
    sc.exp = kernelConfig();
    sc.shards = 3;
    sc.threads = 1;
    const ServeResult one = ServeServer::replayTrace(trace, sc);
    sc.threads = 4;
    const ServeResult four = ServeServer::replayTrace(trace, sc);
    expectSameCounters(one.result, four.result);
    EXPECT_TRUE(one.ledgerConserves);
    EXPECT_TRUE(four.ledgerConserves);
}

TEST(ServeServer, ShardSummariesCoverEveryRequest)
{
    const Trace trace = smallTrace();
    ServeConfig sc;
    sc.exp = kernelConfig();
    sc.shards = 3;
    sc.threads = 2;
    const ServeResult res = ServeServer::replayTrace(trace, sc);
    ASSERT_EQ(res.shards.size(), 3u);
    uint64_t requests = 0;
    uint64_t hits = 0;
    for (const ShardSummary &s : res.shards) {
        requests += s.requests;
        hits += s.hits;
    }
    EXPECT_EQ(requests, res.result.cache.accesses);
    EXPECT_EQ(hits, res.result.cache.hits);
}

TEST(ServeServer, WtduLogReplayMatchesExperiment)
{
    const Trace trace = smallTrace(11);
    ExperimentConfig cfg = kernelConfig();
    cfg.storage.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    const ExperimentResult ref = runExperiment(trace, cfg);

    ServeConfig sc;
    sc.exp = cfg;
    sc.shards = 1;
    sc.threads = 3;
    const ServeResult res = ServeServer::replayTrace(trace, sc);
    expectSameCounters(res.result, ref);
    EXPECT_GT(res.result.logWrites, 0u);
}

TEST(LoadGen, DeterministicAcrossRunsAndThreadCounts)
{
    LoadGenConfig gen;
    // One producer: each stripe then sees time-ordered arrivals, so
    // results are identical for any worker-thread count. (With >1
    // producers the ring interleaving is scheduling-dependent.)
    gen.producers = 1;
    gen.requests = 5000;
    gen.arrivalRate = 500.0;
    gen.seed = 42;
    gen.latencySampleEvery = 0; // host stamps off: pure simulation

    auto run = [&gen](std::size_t threads) {
        ServeConfig sc;
        sc.exp = kernelConfig();
        sc.numDisks = 8;
        sc.shards = 4;
        sc.threads = threads;
        ServeServer server(sc);
        server.start();
        runLoadGen(server, gen);
        const Time end =
            static_cast<double>(gen.requests - 1) / gen.arrivalRate;
        return server.finish(end);
    };

    const ServeResult a = run(1);
    const ServeResult b = run(4);
    EXPECT_EQ(a.result.cache.accesses, gen.requests);
    expectSameCounters(a.result, b.result);
    EXPECT_TRUE(a.ledgerConserves);
    EXPECT_TRUE(b.ledgerConserves);
}

} // namespace
} // namespace pacache::serve
