#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/request_ring.hh"

namespace pacache::serve
{
namespace
{

TEST(RequestRing, SingleThreadFifo)
{
    RequestRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.empty());
    int out = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(RequestRing, FullRingRejectsPush)
{
    RequestRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    int out = -1;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(ring.tryPush(4)); // slot freed
}

TEST(RequestRing, WrapsAroundManyTimes)
{
    RequestRing<int> ring(4);
    int out = -1;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_TRUE(ring.empty());
}

/**
 * MPMC stress: every pushed value is popped exactly once, and each
 * producer's values come out in that producer's order (the FIFO
 * guarantee serve-mode determinism rests on).
 */
TEST(RequestRing, ConcurrentProducersConsumersLoseNothing)
{
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 20000;
    RequestRing<uint64_t> ring(64);

    std::atomic<bool> done{false};
    std::mutex sinkLock;
    std::vector<uint64_t> sink;
    sink.reserve(kProducers * kPerProducer);

    std::vector<std::thread> consumers;
    for (int t = 0; t < kConsumers; ++t) {
        consumers.emplace_back([&] {
            std::vector<uint64_t> local;
            uint64_t v = 0;
            for (;;) {
                if (ring.tryPop(v))
                    local.push_back(v);
                else if (done.load(std::memory_order_acquire) &&
                         ring.empty())
                    break;
                else
                    std::this_thread::yield();
            }
            const std::lock_guard<std::mutex> g(sinkLock);
            sink.insert(sink.end(), local.begin(), local.end());
        });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ring, p] {
            for (int n = 0; n < kPerProducer; ++n) {
                const uint64_t v =
                    (static_cast<uint64_t>(p) << 32) |
                    static_cast<uint64_t>(n);
                while (!ring.tryPush(v))
                    std::this_thread::yield();
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    done.store(true, std::memory_order_release);
    for (std::thread &t : consumers)
        t.join();

    ASSERT_EQ(sink.size(),
              static_cast<std::size_t>(kProducers) * kPerProducer);
    std::sort(sink.begin(), sink.end());
    for (int p = 0; p < kProducers; ++p) {
        for (int n = 0; n < kPerProducer; ++n) {
            const uint64_t expect = (static_cast<uint64_t>(p) << 32) |
                                    static_cast<uint64_t>(n);
            EXPECT_EQ(sink[static_cast<std::size_t>(p) * kPerProducer +
                           n],
                      expect);
        }
    }
}

} // namespace
} // namespace pacache::serve
