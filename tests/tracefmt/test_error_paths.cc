/**
 * @file
 * Ingestion error paths: deliberately malformed inputs must fail with
 * a located, descriptive error — never a crash, never silent garbage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "temp_file.hh"
#include "tracefmt/formats.hh"
#include "tracefmt/pct.hh"

namespace pacache
{
namespace
{

using test::messageOf;
using test::tempPath;
using test::writeTempFile;

/** One raw record for hand-assembled .pct images. */
struct RawRecord
{
    double time;
    uint64_t block;
    uint32_t disk;
    uint32_t count;
    bool write;
};

void
putLe32(std::vector<unsigned char> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void
putLe64(std::vector<unsigned char> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void
putF64(std::vector<unsigned char> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putLe64(out, bits);
}

/**
 * Assemble a syntactically valid .pct image (magic, version, correct
 * FNV-1a64 checksum) from arbitrary records — including ones the
 * writer itself would refuse, like non-monotone timestamps.
 */
std::string
writeRawPct(const std::string &name,
            const std::vector<RawRecord> &records)
{
    std::vector<unsigned char> body;
    uint32_t numDisks = 0;
    for (const RawRecord &rec : records) {
        putF64(body, rec.time);
        putLe64(body, rec.block);
        putLe32(body, rec.disk);
        putLe32(body, rec.count |
                          (rec.write ? 0x80000000u : 0u));
        numDisks = std::max(numDisks, rec.disk + 1);
    }
    uint64_t fnv = 0xcbf29ce484222325ULL;
    for (unsigned char byte : body) {
        fnv ^= byte;
        fnv *= 0x100000001b3ULL;
    }

    std::vector<unsigned char> image;
    image.insert(image.end(), tracefmt::kPctMagic,
                 tracefmt::kPctMagic + 8);
    putLe32(image, tracefmt::kPctVersion);
    putLe32(image, numDisks);
    putLe64(image, records.size());
    putLe64(image, fnv);
    putF64(image, records.empty() ? 0.0 : records.back().time);
    image.insert(image.end(), body.begin(), body.end());

    const std::string path = tempPath(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    EXPECT_TRUE(out.good());
    return path;
}

TEST(PctErrors, TruncatedHeaderIsFatal)
{
    // Shorter than the 40-byte header: not even the magic fits a
    // validation pass.
    const std::string path =
        writeTempFile("trunc_header.pct", "PCTRACE1\x01");
    EXPECT_THROW(tracefmt::readPctInfo(path), std::runtime_error);
    EXPECT_THROW(tracefmt::PctBufferedSource src(path),
                 std::runtime_error);
    EXPECT_THROW(tracefmt::PctMmapSource src(path),
                 std::runtime_error);
    const std::string msg = messageOf(
        [&] { tracefmt::readPctInfo(path); });
    EXPECT_NE(msg.find("too small"), std::string::npos) << msg;
}

TEST(PctErrors, BufferedReaderDetectsChecksumCorruption)
{
    const std::string path = writeRawPct(
        "bad_fnv.pct",
        {{0.0, 1, 0, 1, false}, {1.0, 2, 0, 1, true}});
    // Corrupt one record byte; the stored checksum no longer matches.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(tracefmt::kPctHeaderBytes + 8);
        f.put('\x5a');
    }
    const std::string msg = messageOf([&] {
        tracefmt::PctBufferedSource src(path);
    });
    EXPECT_NE(msg.find("checksum"), std::string::npos) << msg;

    // Opting out of verification defers the damage to the payload,
    // which is the documented trade-off.
    tracefmt::PctReadOptions opts;
    opts.verifyChecksum = false;
    tracefmt::PctBufferedSource lax(path, opts);
    TraceRecord rec;
    EXPECT_TRUE(lax.next(rec));
}

TEST(PctErrors, NonMonotoneTimestampsAreFatalInBothReaders)
{
    // The image is bit-valid (checksum included); only the times go
    // backwards. Readers must refuse at the offending record instead
    // of handing the simulator a time machine.
    const std::string path = writeRawPct(
        "backwards.pct",
        {{1.0, 1, 0, 1, false},
         {0.5, 2, 0, 1, false},
         {2.0, 3, 0, 1, false}});

    tracefmt::PctBufferedSource buffered(path);
    TraceRecord rec;
    ASSERT_TRUE(buffered.next(rec));
    const std::string bufferedMsg =
        messageOf([&] { buffered.next(rec); });
    EXPECT_NE(bufferedMsg.find("out-of-order time"), std::string::npos)
        << bufferedMsg;

    tracefmt::PctMmapSource mapped(path);
    ASSERT_TRUE(mapped.next(rec));
    const std::string mappedMsg = messageOf([&] { mapped.next(rec); });
    EXPECT_NE(mappedMsg.find("out-of-order time"), std::string::npos)
        << mappedMsg;
}

TEST(SpcErrors, SectorBeyondPackedKeyLimitIsFatal)
{
    // LBA 2^52 maps past 2^48 blocks; residency keys pack the block
    // number into 48 bits, so ingestion must reject it with a located
    // error.
    const std::string path = writeTempFile(
        "huge_lba.csv", "0,4503599627370496,4096,r,0.0\n");
    tracefmt::SpcSource src(path);
    TraceRecord rec;
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("2^48"), std::string::npos) << msg;
}

TEST(SpcErrors, NonNumericFieldNamesLineAndColumn)
{
    const std::string path = writeTempFile(
        "bad_field.csv",
        "0,16,4096,r,0.0\n"
        "0,banana,4096,r,0.5\n");
    tracefmt::SpcSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("2"), std::string::npos)
        << "error should carry the line number: " << msg;
}

} // namespace
} // namespace pacache
