#include <gtest/gtest.h>

#include <sstream>

#include "temp_file.hh"
#include "tracefmt/text_source.hh"

namespace pacache
{
namespace
{

using test::messageOf;
using test::writeTempFile;

TEST(TextSource, ParsesRecordsSkippingCommentsAndBlanks)
{
    std::istringstream is("# header comment\n"
                          "0.5 0 100 2 R\n"
                          "\n"
                          "1.5 1 200 1 W\n"
                          "   \n"
                          "# trailing comment\n");
    tracefmt::TextSource src(is, "unit");
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec, (TraceRecord{0.5, 0, 100, 2, false}));
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec, (TraceRecord{1.5, 1, 200, 1, true}));
    EXPECT_FALSE(src.next(rec));
}

TEST(TextSource, HandlesCrlfLineEndings)
{
    std::istringstream is("0.5 0 100 2 R\r\n1.0 0 101 1 W\r\n");
    tracefmt::TextSource src(is, "crlf");
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.numBlocks, 2u);
    ASSERT_TRUE(src.next(rec));
    EXPECT_TRUE(rec.write);
}

TEST(TextSource, RewindReplaysTheFile)
{
    const std::string path = writeTempFile(
        "text_rewind.txt", "0.0 0 1 1 R\n1.0 1 2 1 W\n");
    tracefmt::TextSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    ASSERT_TRUE(src.next(rec));
    ASSERT_FALSE(src.next(rec));
    src.rewind();
    ASSERT_TRUE(src.next(rec));
    EXPECT_DOUBLE_EQ(rec.time, 0.0);
    ASSERT_TRUE(src.next(rec));
    EXPECT_DOUBLE_EQ(rec.time, 1.0);
}

TEST(TextSource, ErrorsCarrySourceLineAndToken)
{
    std::istringstream is("0.0 0 1 1 R\n"
                          "0.5 0 2 1 W\n"
                          "0.7 0 bogus 1 R\n");
    tracefmt::TextSource src(is, "mytrace.txt");
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    ASSERT_TRUE(src.next(rec));
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("mytrace.txt:3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
}

TEST(TextSource, RejectsOutOfOrderArrivalsWithContext)
{
    std::istringstream is("1.0 0 1 1 R\n0.5 0 2 1 R\n");
    tracefmt::TextSource src(is, "ooo.txt");
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("ooo.txt:2"), std::string::npos) << msg;
}

TEST(TextSource, RejectsMalformedFields)
{
    const auto fails = [](const std::string &line) {
        std::istringstream is(line + "\n");
        tracefmt::TextSource src(is, "bad");
        TraceRecord rec;
        EXPECT_ANY_THROW(src.next(rec)) << line;
    };
    fails("not a record at all");
    fails("1.0 0 5 1");          // missing flag
    fails("1.0 0 5 1 X");        // bad flag
    fails("1.0 0 5 0 R");        // zero-length request
    fails("-1.0 0 5 1 R");       // negative time
    fails("1.0 0 5 1 R extra");  // trailing token
    fails("nan 0 5 1 R");        // non-finite time
}

TEST(TextSource, EmptyAndCommentOnlyStreamsYieldNothing)
{
    std::istringstream empty("");
    tracefmt::TextSource src1(empty, "empty");
    TraceRecord rec;
    EXPECT_FALSE(src1.next(rec));

    std::istringstream comments("# one\n# two\n\n");
    tracefmt::TextSource src2(comments, "comments");
    EXPECT_FALSE(src2.next(rec));
}

TEST(TextSource, MissingFileIsFatalWithPath)
{
    const std::string msg = messageOf(
        [] { tracefmt::TextSource src("/no/such/trace.txt"); });
    EXPECT_NE(msg.find("/no/such/trace.txt"), std::string::npos) << msg;
}

} // namespace
} // namespace pacache
