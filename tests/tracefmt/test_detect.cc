#include <gtest/gtest.h>

#include "temp_file.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/sink.hh"

namespace pacache
{
namespace
{

using test::messageOf;
using test::tempPath;
using test::writeTempFile;
using tracefmt::TraceFormat;

TEST(Detect, FormatNamesRoundTrip)
{
    for (const TraceFormat fmt :
         {TraceFormat::Auto, TraceFormat::Text, TraceFormat::Spc,
          TraceFormat::Msr, TraceFormat::Blktrace, TraceFormat::Pct}) {
        EXPECT_EQ(tracefmt::parseTraceFormat(
                      tracefmt::traceFormatName(fmt)),
                  fmt);
    }
    EXPECT_ANY_THROW(tracefmt::parseTraceFormat("bogus"));
}

TEST(Detect, IdentifiesEveryTextFormat)
{
    const std::string text = writeTempFile(
        "det_text.txt", "# comment\n0.5 0 100 2 R\n");
    EXPECT_EQ(tracefmt::detectTraceFormat(text), TraceFormat::Text);

    const std::string spc = writeTempFile(
        "det_spc.csv", "0,16,8192,w,0.5\n");
    EXPECT_EQ(tracefmt::detectTraceFormat(spc), TraceFormat::Spc);

    const std::string msr = writeTempFile(
        "det_msr.csv",
        "128166372003061629,web0,1,Read,8192,4096,123\n");
    EXPECT_EQ(tracefmt::detectTraceFormat(msr), TraceFormat::Msr);

    const std::string blk = writeTempFile(
        "det_blk.txt",
        "8,0 1 1 0.000000000 1234 Q R 32 + 8 [fio]\n");
    EXPECT_EQ(tracefmt::detectTraceFormat(blk), TraceFormat::Blktrace);
}

TEST(Detect, IdentifiesPctByMagic)
{
    Trace t;
    t.append({0.0, 0, 1, 1, false});
    const std::string path = tempPath("det.pct");
    tracefmt::MemorySource src(t);
    tracefmt::writePct(path, src);
    EXPECT_EQ(tracefmt::detectTraceFormat(path), TraceFormat::Pct);
}

TEST(Detect, UndecidableInputIsFatalWithPath)
{
    const std::string path = writeTempFile(
        "det_garbage.txt", "utterly unrecognizable content\n");
    const std::string msg = messageOf(
        [&] { tracefmt::detectTraceFormat(path); });
    EXPECT_NE(msg.find("det_garbage.txt"), std::string::npos) << msg;
}

TEST(OpenTraceSource, AutoDetectsAndStreams)
{
    const std::string path = writeTempFile(
        "open_auto.txt", "0.5 0 100 2 R\n1.5 1 200 1 W\n");
    const auto src = tracefmt::openTraceSource(path);
    EXPECT_STREQ(src->formatName(), "text");
    const Trace t = tracefmt::readAll(*src);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[1], (TraceRecord{1.5, 1, 200, 1, true}));
}

TEST(OpenTraceSource, ExplicitFormatOverridesSniffing)
{
    // A single-disk SPC line is also a well-formed 5-field CSV; an
    // explicit format must win over the sniffer.
    const std::string path = writeTempFile(
        "open_explicit.csv", "0,16,8192,w,0.5\n");
    const auto src =
        tracefmt::openTraceSource(path, TraceFormat::Spc);
    EXPECT_STREQ(src->formatName(), "spc");
}

TEST(OpenTraceSink, ExtensionPicksTheBinaryFormat)
{
    Trace t;
    t.append({0.0, 0, 1, 1, false});
    t.append({1.0, 2, 5, 3, true});

    // text -> .pct -> text: the classic golden round-trip.
    const std::string pct_path = tempPath("sink_rt.pct");
    {
        tracefmt::MemorySource src(t);
        const auto sink = tracefmt::openTraceSink(pct_path);
        EXPECT_EQ(tracefmt::copyAll(src, *sink), 2u);
    }
    EXPECT_EQ(tracefmt::detectTraceFormat(pct_path), TraceFormat::Pct);

    const std::string txt_path = tempPath("sink_rt.txt");
    {
        const auto src = tracefmt::openTraceSource(pct_path);
        const auto sink = tracefmt::openTraceSink(txt_path);
        EXPECT_EQ(tracefmt::copyAll(*src, *sink), 2u);
    }
    EXPECT_EQ(tracefmt::detectTraceFormat(txt_path), TraceFormat::Text);

    const auto back = tracefmt::openTraceSource(txt_path);
    const Trace t2 = tracefmt::readAll(*back);
    ASSERT_EQ(t2.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t2[i], t[i]) << "record " << i;
}

} // namespace
} // namespace pacache
