/**
 * @file
 * Temp-file helpers for the tracefmt tests: every fixture file lands
 * in a process-scoped path under gtest's temp directory, so parallel
 * test processes (ctest -j runs several binaries at once) never
 * collide on a name.
 */

#ifndef PACACHE_TESTS_TRACEFMT_TEMP_FILE_HH
#define PACACHE_TESTS_TRACEFMT_TEMP_FILE_HH

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <string>

#include "support/temp_dir.hh"

namespace pacache::test
{

inline std::string
tempPath(const std::string &name)
{
    return processScopedPath(name);
}

/** Write @p content to a fresh temp file and return its path. */
inline std::string
writeTempFile(const std::string &name, const std::string &content)
{
    const std::string path = tempPath(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    EXPECT_TRUE(out.good()) << "cannot write " << path;
    return path;
}

/** Run @p fn, which must throw, and return the exception message. */
inline std::string
messageOf(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const std::exception &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected an exception";
    return {};
}

} // namespace pacache::test

#endif // PACACHE_TESTS_TRACEFMT_TEMP_FILE_HH
