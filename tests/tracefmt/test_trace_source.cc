#include <gtest/gtest.h>

#include "tracefmt/trace_source.hh"

namespace pacache
{
namespace
{

Trace
sampleTrace()
{
    Trace t;
    t.append({0.0, 0, 10, 2, false});
    t.append({0.5, 1, 20, 1, true});
    t.append({1.5, 2, 30, 4, false});
    t.append({2.0, 0, 11, 1, true});
    return t;
}

TEST(MemorySource, StreamsRecordsInOrder)
{
    const Trace t = sampleTrace();
    tracefmt::MemorySource src(t);
    TraceRecord rec;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_TRUE(src.next(rec));
        EXPECT_EQ(rec, t[i]);
    }
    EXPECT_FALSE(src.next(rec));
    EXPECT_FALSE(src.next(rec)); // stays exhausted
}

TEST(MemorySource, RewindRestartsFromTheFirstRecord)
{
    const Trace t = sampleTrace();
    tracefmt::MemorySource src(t);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    ASSERT_TRUE(src.next(rec));
    src.rewind();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec, t[0]);
}

TEST(MemorySource, ReportsExactHints)
{
    const Trace t = sampleTrace();
    tracefmt::MemorySource src(t);
    EXPECT_EQ(src.sizeHint(), t.size());
    EXPECT_EQ(src.numDisksHint(), 3u);
    EXPECT_DOUBLE_EQ(src.endTimeHint(), 2.0);
    EXPECT_STREQ(src.formatName(), "memory");
}

TEST(MemorySource, EmptyTraceHasNoEndTime)
{
    const Trace t;
    tracefmt::MemorySource src(t);
    TraceRecord rec;
    EXPECT_FALSE(src.next(rec));
    EXPECT_EQ(src.sizeHint(), 0u);
    EXPECT_LT(src.endTimeHint(), 0.0);
}

TEST(ReadAll, MaterializesTheWholeStream)
{
    const Trace t = sampleTrace();
    tracefmt::MemorySource src(t);
    const Trace back = tracefmt::readAll(src);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(back[i], t[i]);
    EXPECT_EQ(back.numDisks(), t.numDisks());
}

TEST(Scan, SummarizesAndRewinds)
{
    const Trace t = sampleTrace();
    tracefmt::MemorySource src(t);
    const tracefmt::ScanSummary sum = tracefmt::scan(src);
    EXPECT_EQ(sum.records, 4u);
    EXPECT_EQ(sum.writes, 2u);
    EXPECT_EQ(sum.blocks, 8u);
    EXPECT_EQ(sum.numDisks, 3u);
    EXPECT_DOUBLE_EQ(sum.firstTime, 0.0);
    EXPECT_DOUBLE_EQ(sum.endTime, 2.0);
    EXPECT_DOUBLE_EQ(sum.writeRatio(), 0.5);
    EXPECT_DOUBLE_EQ(sum.meanInterArrival(), 2.0 / 3.0);

    // scan() leaves the source rewound and re-runnable.
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec, t[0]);
}

TEST(Scan, EmptyStreamYieldsZeroSummary)
{
    const Trace t;
    tracefmt::MemorySource src(t);
    const tracefmt::ScanSummary sum = tracefmt::scan(src);
    EXPECT_EQ(sum.records, 0u);
    EXPECT_DOUBLE_EQ(sum.writeRatio(), 0.0);
    EXPECT_DOUBLE_EQ(sum.meanInterArrival(), 0.0);
}

} // namespace
} // namespace pacache
