#include <gtest/gtest.h>

#include "temp_file.hh"
#include "tracefmt/formats.hh"

namespace pacache
{
namespace
{

using test::messageOf;
using test::writeTempFile;

TEST(SpcSource, MapsSectorsAndBytesOntoBlocks)
{
    // LBA is in 512-byte sectors, size in bytes; default 4 KiB blocks.
    const std::string path = writeTempFile(
        "spc_basic.csv",
        "0,16,8192,w,0.5\n"
        "1,24,512,R,0.75\n");
    tracefmt::SpcSource src(path);
    TraceRecord rec;

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 0u);
    EXPECT_EQ(rec.block, 2u); // 16 * 512 / 4096
    EXPECT_EQ(rec.numBlocks, 2u);
    EXPECT_TRUE(rec.write);
    EXPECT_DOUBLE_EQ(rec.time, 0.0); // rebased to t = 0

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 1u);
    EXPECT_EQ(rec.block, 3u);
    EXPECT_EQ(rec.numBlocks, 1u);
    EXPECT_FALSE(rec.write);
    EXPECT_DOUBLE_EQ(rec.time, 0.25);
    EXPECT_FALSE(src.next(rec));
}

TEST(SpcSource, HonorsBlockAndSectorSizeOverrides)
{
    const std::string path = writeTempFile(
        "spc_sizes.csv", "0,4,1024,r,0.0\n");
    tracefmt::IngestOptions opt;
    opt.blockBytes = 1024;
    opt.sectorBytes = 1024;
    tracefmt::SpcSource src(path, opt);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.block, 4u);
    EXPECT_EQ(rec.numBlocks, 1u);
}

TEST(SpcSource, FoldsDisksViaModulo)
{
    const std::string path = writeTempFile(
        "spc_modulo.csv",
        "5,0,4096,r,0.0\n"
        "6,0,4096,r,0.1\n");
    tracefmt::IngestOptions opt;
    opt.diskModulo = 2;
    tracefmt::SpcSource src(path, opt);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 1u); // 5 % 2
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 0u); // 6 % 2
}

TEST(SpcSource, ClampsSmallTimestampRegressionsByDefault)
{
    const std::string path = writeTempFile(
        "spc_clamp.csv",
        "0,0,4096,r,0.5\n"
        "0,8,4096,r,0.4\n"); // regressed arrival
    tracefmt::SpcSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_DOUBLE_EQ(rec.time, 0.0);
    ASSERT_TRUE(src.next(rec));
    EXPECT_DOUBLE_EQ(rec.time, 0.0); // clamped, not negative
}

TEST(SpcSource, StrictOrderModeRejectsRegressions)
{
    const std::string path = writeTempFile(
        "spc_strict.csv",
        "0,0,4096,r,0.5\n"
        "0,8,4096,r,0.4\n");
    tracefmt::IngestOptions opt;
    opt.clampUnsorted = false;
    tracefmt::SpcSource src(path, opt);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find(":2"), std::string::npos) << msg;
}

TEST(SpcSource, RejectsMalformedLinesWithFileContext)
{
    const std::string path = writeTempFile(
        "spc_bad.csv",
        "0,16,8192,w,0.5\n"
        "0,16,8192\n");
    tracefmt::SpcSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("spc_bad.csv:2"), std::string::npos) << msg;

    const std::string opcode = writeTempFile(
        "spc_badop.csv", "0,16,8192,x,0.5\n");
    tracefmt::SpcSource src2(opcode);
    const std::string msg2 = messageOf([&] { src2.next(rec); });
    EXPECT_NE(msg2.find("'x'"), std::string::npos) << msg2;
}

TEST(MsrSource, ParsesFiletimeTicksAndByteExtents)
{
    const std::string path = writeTempFile(
        "msr_basic.csv",
        "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
        "128166372003061629,web0,1,Read,8192,4096,123\n"
        "128166372013061629,web0,2,Write,0,8192,55\n");
    tracefmt::MsrSource src(path);
    TraceRecord rec;

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 1u);
    EXPECT_EQ(rec.block, 2u);
    EXPECT_EQ(rec.numBlocks, 1u);
    EXPECT_FALSE(rec.write);
    EXPECT_DOUBLE_EQ(rec.time, 0.0);

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 2u);
    EXPECT_EQ(rec.block, 0u);
    EXPECT_EQ(rec.numBlocks, 2u);
    EXPECT_TRUE(rec.write);
    // 10^7 FILETIME ticks of 100 ns = exactly one second.
    EXPECT_DOUBLE_EQ(rec.time, 1.0);
    EXPECT_FALSE(src.next(rec));
}

TEST(MsrSource, WorksWithoutHeaderRow)
{
    const std::string path = writeTempFile(
        "msr_noheader.csv",
        "128166372003061629,web0,0,Read,0,4096,1\n");
    tracefmt::MsrSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 0u);
    EXPECT_FALSE(src.next(rec));
}

TEST(MsrSource, RewindReanchorsDeterministically)
{
    const std::string path = writeTempFile(
        "msr_rewind.csv",
        "128166372003061629,web0,0,Read,0,4096,1\n"
        "128166372008061629,web0,0,Write,4096,4096,1\n");
    tracefmt::MsrSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    ASSERT_TRUE(src.next(rec));
    const Time second_pass_expected = rec.time;
    src.rewind();
    ASSERT_TRUE(src.next(rec));
    EXPECT_DOUBLE_EQ(rec.time, 0.0);
    ASSERT_TRUE(src.next(rec));
    EXPECT_DOUBLE_EQ(rec.time, second_pass_expected);
}

TEST(MsrSource, RejectsTruncatedRows)
{
    const std::string path = writeTempFile(
        "msr_bad.csv", "128166372003061629,web0,0,Read\n");
    tracefmt::MsrSource src(path);
    TraceRecord rec;
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("msr_bad.csv:1"), std::string::npos) << msg;
}

TEST(BlktraceSource, ParsesQueueActionsAndSkipsNoise)
{
    const std::string path = writeTempFile(
        "blk_basic.txt",
        "  8,0    1        1     0.000000000  1234  Q   R 32 + 8 [fio]\n"
        "  8,0    1        2     0.001000000  1234  G   R 32 + 8 [fio]\n"
        "  8,16   1        3     0.002000000  1234  Q   W 0 + 16 [fio]\n"
        "  8,0    1        4     0.003000000  1234  C   R 32 + 8 [0]\n"
        "CPU0 (8,0):\n"
        " Reads Queued:           1,        4KiB\n");
    tracefmt::BlktraceSource src(path);
    TraceRecord rec;

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 0u); // first device seen -> dense id 0
    EXPECT_EQ(rec.block, 4u); // sector 32 * 512 B / 4096 B
    EXPECT_EQ(rec.numBlocks, 1u);
    EXPECT_FALSE(rec.write);
    EXPECT_DOUBLE_EQ(rec.time, 0.0);

    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 1u); // 8,16 -> dense id 1
    EXPECT_EQ(rec.block, 0u);
    EXPECT_EQ(rec.numBlocks, 2u);
    EXPECT_TRUE(rec.write);
    EXPECT_DOUBLE_EQ(rec.time, 0.002);
    EXPECT_FALSE(src.next(rec)); // G/C actions and summaries skipped
}

TEST(BlktraceSource, DeviceMapIsStableAcrossRewind)
{
    const std::string path = writeTempFile(
        "blk_rewind.txt",
        "8,0 1 1 0.000000000 1 Q R 0 + 8 [a]\n"
        "8,16 1 2 0.001000000 1 Q R 0 + 8 [a]\n");
    tracefmt::BlktraceSource src(path);
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 1u);
    src.rewind();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 0u);
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.disk, 1u);
}

TEST(BlktraceSource, RejectsRecordsWithoutAnExtent)
{
    const std::string path = writeTempFile(
        "blk_bad.txt", "8,0 1 1 0.000000000 1 Q R 64\n");
    tracefmt::BlktraceSource src(path);
    TraceRecord rec;
    const std::string msg = messageOf([&] { src.next(rec); });
    EXPECT_NE(msg.find("blk_bad.txt:1"), std::string::npos) << msg;
}

} // namespace
} // namespace pacache
