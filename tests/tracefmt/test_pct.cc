#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "temp_file.hh"
#include "tracefmt/pct.hh"

namespace pacache
{
namespace
{

using test::messageOf;
using test::tempPath;

Trace
sampleTrace()
{
    Trace t;
    t.append({0.0, 0, 10, 2, false});
    t.append({0.125, 3, 1ULL << 40, 1, true}); // > 32-bit block number
    t.append({0.125, 1, 20, 0x7fffffff, false}); // max request length
    t.append({2.5, 2, 30, 1, true});
    return t;
}

std::string
writePctOf(const Trace &t, const std::string &name)
{
    const std::string path = tempPath(name);
    tracefmt::MemorySource src(t);
    tracefmt::writePct(path, src);
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

template <typename Source>
void
expectRoundTrip(const Trace &t, const std::string &path)
{
    Source src(path);
    TraceRecord rec;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_TRUE(src.next(rec)) << "record " << i;
        EXPECT_EQ(rec, t[i]) << "record " << i;
    }
    EXPECT_FALSE(src.next(rec));

    // Rewind replays identically.
    src.rewind();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec, t[0]);
}

TEST(Pct, RoundTripsThroughBothReaders)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "roundtrip.pct");
    expectRoundTrip<tracefmt::PctBufferedSource>(t, path);
    expectRoundTrip<tracefmt::PctMmapSource>(t, path);
}

TEST(Pct, HeaderRecordsExactMetadata)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "header.pct");
    const tracefmt::PctInfo info = tracefmt::readPctInfo(path);
    EXPECT_EQ(info.version, tracefmt::kPctVersion);
    EXPECT_EQ(info.records, t.size());
    EXPECT_EQ(info.numDisks, 4u);
    EXPECT_DOUBLE_EQ(info.endTime, 2.5);
    EXPECT_NE(info.checksum, 0u);

    // The readers surface the same values as hints.
    tracefmt::PctMmapSource src(path);
    EXPECT_EQ(src.sizeHint(), t.size());
    EXPECT_EQ(src.numDisksHint(), 4u);
    EXPECT_DOUBLE_EQ(src.endTimeHint(), 2.5);
}

TEST(Pct, FileSizeMatchesTheFixedLayout)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "layout.pct");
    EXPECT_EQ(slurp(path).size(),
              tracefmt::kPctHeaderBytes +
                  t.size() * tracefmt::kPctRecordBytes);
}

TEST(Pct, EmptyTraceRoundTrips)
{
    const Trace t;
    const std::string path = writePctOf(t, "empty.pct");
    const tracefmt::PctInfo info = tracefmt::readPctInfo(path);
    EXPECT_EQ(info.records, 0u);
    tracefmt::PctMmapSource src(path);
    TraceRecord rec;
    EXPECT_FALSE(src.next(rec));
}

TEST(Pct, WriterRejectsOutOfOrderAppends)
{
    const std::string path = tempPath("order.pct");
    tracefmt::PctWriter writer(path);
    writer.append({1.0, 0, 0, 1, false});
    EXPECT_ANY_THROW(writer.append({0.5, 0, 1, 1, false}));
}

TEST(Pct, RejectsBadMagic)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "badmagic.pct");
    std::string bytes = slurp(path);
    bytes[0] = 'X';
    spit(path, bytes);
    EXPECT_ANY_THROW(tracefmt::PctMmapSource src(path));
    EXPECT_ANY_THROW(tracefmt::PctBufferedSource src(path));
}

TEST(Pct, RejectsUnknownVersion)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "badversion.pct");
    std::string bytes = slurp(path);
    bytes[8] = 99; // version field, little-endian low byte
    spit(path, bytes);
    const std::string msg = messageOf(
        [&] { tracefmt::PctMmapSource src(path); });
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
}

TEST(Pct, RejectsTruncatedFiles)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "truncated.pct");
    const std::string bytes = slurp(path);
    spit(path, bytes.substr(0, bytes.size() - 5));
    EXPECT_ANY_THROW(tracefmt::PctMmapSource src(path));
    EXPECT_ANY_THROW(tracefmt::PctBufferedSource src(path));
}

TEST(Pct, ChecksumCatchesFlippedRecordBytes)
{
    const Trace t = sampleTrace();
    const std::string path = writePctOf(t, "corrupt.pct");
    std::string bytes = slurp(path);
    // Flip a bit inside the second record's block-number field.
    bytes[tracefmt::kPctHeaderBytes + tracefmt::kPctRecordBytes + 9] ^=
        0x40;
    spit(path, bytes);
    const std::string msg = messageOf(
        [&] { tracefmt::PctMmapSource src(path); });
    EXPECT_NE(msg.find("checksum"), std::string::npos) << msg;

    // Opting out of verification reads the (wrong) record fine.
    tracefmt::PctReadOptions opts;
    opts.verifyChecksum = false;
    tracefmt::PctMmapSource lax(path, opts);
    TraceRecord rec;
    ASSERT_TRUE(lax.next(rec));
    ASSERT_TRUE(lax.next(rec));
    EXPECT_NE(rec.block, t[1].block);
}

TEST(Pct, MadviseOptionsDoNotChangeDecoding)
{
    // Enough records that a tiny hint cadence fires many batches:
    // the madvise knobs (look-ahead window, release-behind, both
    // off) tune paging behavior only and must never alter what the
    // reader decodes, including across a rewind.
    Trace t;
    for (int i = 0; i < 100; ++i)
        t.append({i * 0.25, static_cast<DiskId>(i % 4),
                  static_cast<BlockNum>(i) * 131, 1, i % 3 == 0});
    const std::string path = writePctOf(t, "madvise.pct");

    tracefmt::PctReadOptions variants[3];
    variants[0].hintRecords = 8; // 12 full batches over 100 records
    variants[1].hintRecords = 8;
    variants[1].releaseBehind = false; // sharded-replay configuration
    variants[2].prefetchAhead = false;
    variants[2].releaseBehind = false; // no hints at all
    for (const auto &opts : variants) {
        tracefmt::PctMmapSource src(path, opts);
        TraceRecord rec;
        for (std::size_t i = 0; i < t.size(); ++i) {
            ASSERT_TRUE(src.next(rec)) << "record " << i;
            ASSERT_EQ(rec, t[i]) << "record " << i;
        }
        EXPECT_FALSE(src.next(rec));
        // Rewind replays the full sequence identically even after
        // release-behind batches already dropped those pages.
        src.rewind();
        for (std::size_t i = 0; i < t.size(); ++i) {
            ASSERT_TRUE(src.next(rec)) << "rewound record " << i;
            ASSERT_EQ(rec, t[i]) << "rewound record " << i;
        }
    }
}

TEST(Pct, MissingFileIsFatalWithPath)
{
    const std::string msg = messageOf(
        [] { tracefmt::PctMmapSource src("/no/such/file.pct"); });
    EXPECT_NE(msg.find("/no/such/file.pct"), std::string::npos) << msg;
}

} // namespace
} // namespace pacache
