#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "obs/metrics.hh"
#include "runner/sweep.hh"

namespace pacache::runner
{
namespace
{

/** Serialize everything a figure would consume, byte-exactly. */
std::string
serializeOutcomes(const std::vector<RunOutcome> &outcomes)
{
    std::ostringstream os;
    for (const RunOutcome &o : outcomes) {
        os << "=== " << o.label << " ===\n";
        printSummaryReport(os, o.result);
        printPerDiskReport(os, o.result);
        os << "totalEnergy=" << o.result.totalEnergy
           << " logWrites=" << o.result.logWrites
           << " prefetched=" << o.result.prefetchedBlocks << '\n';
    }
    return os.str();
}

TEST(SweepSpec, FromJsonParsesEveryAxis)
{
    const SweepSpec spec = SweepSpec::fromJsonText(R"({
        "name": "fig6-mini",
        "workloads": ["oltp", "cello"],
        "policies": ["lru", "pa-lru", "opg"],
        "cache_blocks": [512, 1024],
        "dpms": ["practical", "oracle"],
        "write_policies": ["wb", "wtdu"],
        "duration": 60
    })");
    EXPECT_EQ(spec.name, "fig6-mini");
    ASSERT_EQ(spec.workloads.size(), 2u);
    EXPECT_EQ(spec.workloads[1], "cello");
    ASSERT_EQ(spec.policies.size(), 3u);
    EXPECT_EQ(spec.policies[1], PolicyKind::PALRU);
    EXPECT_EQ(spec.policies[2], PolicyKind::OPG);
    ASSERT_EQ(spec.cacheBlocks.size(), 2u);
    EXPECT_EQ(spec.cacheBlocks[0], 512u);
    ASSERT_EQ(spec.dpms.size(), 2u);
    EXPECT_EQ(spec.dpms[1], DpmChoice::Oracle);
    ASSERT_EQ(spec.writePolicies.size(), 2u);
    EXPECT_EQ(spec.writePolicies[1],
              WritePolicy::WriteThroughDeferredUpdate);
    EXPECT_DOUBLE_EQ(spec.duration, 60.0);
    EXPECT_EQ(spec.points(), 2u * 3u * 2u * 2u * 2u);
}

TEST(SweepSpec, MissingAxesGetDefaults)
{
    const SweepSpec spec =
        SweepSpec::fromJsonText(R"({"policies": ["fifo"]})");
    EXPECT_EQ(spec.workloads, std::vector<std::string>{"oltp"});
    ASSERT_EQ(spec.policies.size(), 1u);
    EXPECT_EQ(spec.policies[0], PolicyKind::FIFO);
    EXPECT_EQ(spec.cacheBlocks, std::vector<std::size_t>{1024});
    EXPECT_EQ(spec.points(), 1u);
}

TEST(SweepSpec, UnknownKeyIsFatal)
{
    EXPECT_THROW(SweepSpec::fromJsonText(R"({"polices": ["lru"]})"),
                 std::exception);
    EXPECT_THROW(SweepSpec::fromJsonText(R"({"policies": []})"),
                 std::exception);
    EXPECT_THROW(SweepSpec::fromJsonText(R"({"policies": ["zap"]})"),
                 std::exception);
}

TEST(SweepPlan, ExpansionOrderIsStable)
{
    SweepSpec spec;
    spec.workloads = {"opg-showcase"};
    spec.policies = {PolicyKind::LRU, PolicyKind::FIFO};
    spec.cacheBlocks = {64, 128};
    spec.dpms = {DpmChoice::Practical};
    spec.writePolicies = {WritePolicy::WriteBack};
    spec.duration = 30;

    const SweepPlan plan(spec);
    ASSERT_EQ(plan.points().size(), 4u);
    EXPECT_EQ(plan.points()[0].label,
              "opg-showcase/lru/c64/practical/wb");
    EXPECT_EQ(plan.points()[1].label,
              "opg-showcase/lru/c128/practical/wb");
    EXPECT_EQ(plan.points()[2].label,
              "opg-showcase/fifo/c64/practical/wb");
    EXPECT_EQ(plan.points()[3].label,
              "opg-showcase/fifo/c128/practical/wb");
    // All four points share one materialized trace.
    EXPECT_EQ(plan.points()[0].trace, plan.points()[3].trace);
    EXPECT_FALSE(plan.points()[0].trace->empty());
}

/**
 * The acceptance bar for the parallel runner: jobs=8 must reproduce
 * jobs=1 byte-for-byte, including the off-line policies (Belady,
 * OPG) and the stateful on-line one (PA-LRU).
 */
TEST(SweepRunner, ParallelMatchesSerialByteForByte)
{
    SweepSpec spec;
    spec.name = "determinism";
    spec.workloads = {"opg-showcase", "oltp"};
    spec.policies = {PolicyKind::LRU, PolicyKind::PALRU,
                     PolicyKind::OPG, PolicyKind::Belady};
    spec.cacheBlocks = {110};
    spec.dpms = {DpmChoice::Practical};
    spec.writePolicies = {WritePolicy::WriteBack};
    spec.duration = 120;

    const std::string serial =
        serializeOutcomes(runSweep(spec, /*jobs=*/1));
    const std::string parallel =
        serializeOutcomes(runSweep(spec, /*jobs=*/8));
    EXPECT_EQ(serial, parallel);

    // And again: the parallel path must also agree with itself.
    const std::string parallelAgain =
        serializeOutcomes(runSweep(spec, /*jobs=*/8));
    EXPECT_EQ(parallel, parallelAgain);
}

TEST(SweepRunner, RecordsPerRunAndAggregateMetrics)
{
    SweepSpec spec;
    spec.workloads = {"opg-showcase"};
    spec.policies = {PolicyKind::LRU};
    spec.cacheBlocks = {64};
    spec.dpms = {DpmChoice::Practical};
    spec.writePolicies = {WritePolicy::WriteBack};
    spec.duration = 30;

    obs::MetricRegistry metrics;
    const auto outcomes = runSweep(spec, 2, &metrics);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_GT(outcomes[0].wallMs, 0.0);
    EXPECT_GT(outcomes[0].requestsPerSec, 0.0);

    const std::string prefix =
        "runner.opg-showcase/lru/c64/practical/wb";
    EXPECT_DOUBLE_EQ(metrics.gauge(prefix + ".wall_ms").value(),
                     outcomes[0].wallMs);
    EXPECT_DOUBLE_EQ(metrics.gauge("runner.sweep.jobs").value(), 2.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("runner.sweep.runs").value(), 1.0);
    EXPECT_GT(metrics.gauge("runner.sweep.wall_ms").value(), 0.0);
}

} // namespace
} // namespace pacache::runner
