#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/thread_pool.hh"

namespace pacache::runner
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    std::atomic<int> done{0};
    ThreadPool pool(8);
    for (int i = 0; i < 1000; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::atomic<int> done{0};
    pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    // One worker, one deque, pop-from-front: strict FIFO.
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> done{0};
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 50);
    for (int i = 0; i < 50; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(10));
                done.fetch_add(1);
            });
        // No wait(): shutdown must still run everything submitted.
    }
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, UnevenTasksAllComplete)
{
    // A few long tasks among many short ones: idle workers must
    // steal the backlog instead of idling behind the long runs.
    std::atomic<int> done{0};
    ThreadPool pool(4);
    for (int i = 0; i < 400; ++i) {
        const bool slow = i % 100 == 0;
        pool.submit([&done, slow] {
            if (slow)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            done.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 400);
}

TEST(ThreadPool, TaskExceptionPropagatesToWait)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&done, i] {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            done.fetch_add(1);
        });
    // wait() still drains every task, then rethrows on this thread.
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(done.load(), 31);
    // The failure was consumed: the pool stays usable afterwards.
    pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, RepeatedSmallBatchesNeverStrand)
{
    // Regression stress for the submit()/workerLoop() lost-wakeup
    // race: single-task batches maximize submissions racing against
    // workers going idle, and a stranded task hangs wait().
    ThreadPool pool(8);
    std::atomic<int> done{0};
    for (int round = 0; round < 2000; ++round) {
        pool.submit([&done] { done.fetch_add(1); });
        pool.wait();
    }
    EXPECT_EQ(done.load(), 2000);
}

TEST(ThreadPool, SubmitFromManyThreads)
{
    std::atomic<int> done{0};
    ThreadPool pool(4);
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &done] {
            for (int i = 0; i < 250; ++i)
                pool.submit([&done] { done.fetch_add(1); });
        });
    }
    for (std::thread &t : producers)
        t.join();
    pool.wait();
    EXPECT_EQ(done.load(), 1000);
}

} // namespace
} // namespace pacache::runner
