#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "runner/sharded_metrics.hh"
#include "runner/thread_pool.hh"
#include "util/random.hh"

namespace pacache::runner
{
namespace
{

TEST(ShardedCounterTest, ConcurrentIncrementsAreExact)
{
    ShardedCounter counter;
    constexpr int kTasks = 64;
    constexpr uint64_t kPerTask = 1000;
    {
        ThreadPool pool(8);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&counter, t] {
                for (uint64_t i = 0; i < kPerTask; ++i)
                    counter.inc(static_cast<std::size_t>(t));
            });
        }
        pool.wait();
    }
    EXPECT_EQ(counter.total(), kTasks * kPerTask);
}

TEST(ShardedCounterTest, ZeroShardRequestClampsToOne)
{
    ShardedCounter counter(0);
    EXPECT_EQ(counter.shards(), 1u);
    counter.inc(7, 5);
    EXPECT_EQ(counter.total(), 5u);
}

TEST(ShardedHistogramTest, MergedMatchesSerialOnBucketStatistics)
{
    Rng rng(1234);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i)
        samples.push_back(rng.exponential(0.05));

    LogHistogram serial;
    for (const double v : samples)
        serial.record(v);

    ShardedHistogram sharded;
    {
        ThreadPool pool(8);
        constexpr std::size_t kChunk = 2500;
        for (std::size_t start = 0; start < samples.size();
             start += kChunk) {
            pool.submit([&sharded, &samples, start] {
                const std::size_t end =
                    std::min(start + kChunk, samples.size());
                for (std::size_t i = start; i < end; ++i)
                    sharded.record(i, samples[i]);
            });
        }
        pool.wait();
    }

    const LogHistogram merged = sharded.merged();
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_DOUBLE_EQ(merged.min(), serial.min());
    EXPECT_DOUBLE_EQ(merged.max(), serial.max());
    EXPECT_DOUBLE_EQ(merged.bucketSum(), serial.bucketSum());
    EXPECT_DOUBLE_EQ(merged.bucketMean(), serial.bucketMean());
    for (const double p : {0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(merged.quantile(p), serial.quantile(p));
}

/**
 * The property the sweep runner relies on: however the same value
 * multiset is split across threads and shard keys, the emitted dist
 * gauges are byte-identical.
 */
TEST(ShardedHistogramTest, DistGaugesAreByteIdenticalAcrossJobCounts)
{
    Rng rng(99);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(rng.pareto(1.2, 0.001));

    const auto runWith = [&samples](unsigned workers,
                                    std::size_t key_stride) {
        ShardedHistogram hist;
        {
            ThreadPool pool(workers);
            for (std::size_t i = 0; i < samples.size(); ++i) {
                const std::size_t key = i * key_stride;
                pool.submit([&hist, &samples, i, key] {
                    hist.record(key, samples[i]);
                });
            }
            pool.wait();
        }
        obs::MetricRegistry registry;
        recordDistGauges(registry, "dist.sample", hist.merged());
        std::ostringstream os;
        registry.writeText(os);
        return os.str();
    };

    const std::string one = runWith(1, 1);
    EXPECT_EQ(runWith(4, 1), one);
    EXPECT_EQ(runWith(8, 3), one); // different thread AND shard layout
}

TEST(RecordDistGaugesTest, EmitsTheExpectedLeaves)
{
    LogHistogram hist;
    for (int i = 1; i <= 100; ++i)
        hist.record(i * 0.01);
    obs::MetricRegistry registry;
    recordDistGauges(registry, "runner.sweep.dist.energy_j", hist);

    std::ostringstream os;
    registry.writeText(os);
    const std::string text = os.str();
    for (const char *leaf : {".count ", ".mean ", ".p50 ", ".p95 ",
                             ".p99 ", ".min ", ".max "}) {
        EXPECT_NE(text.find(std::string("runner.sweep.dist.energy_j") +
                            leaf),
                  std::string::npos)
            << leaf;
    }
    EXPECT_NE(text.find(".count 100"), std::string::npos);
}

} // namespace
} // namespace pacache::runner
