#include <gtest/gtest.h>

#include <stdexcept>

#include "util/logging.hh"

namespace pacache
{
namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(PACACHE_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(PACACHE_FATAL("bad config: ", "x"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(PACACHE_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(PACACHE_ASSERT(false, "must fail"), std::logic_error);
}

TEST(Logging, PanicMessageContainsPayload)
{
    try {
        PACACHE_PANIC("value=", 7, " name=", "disk");
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("name=disk"),
                  std::string::npos);
    }
}

TEST(Logging, QuietFlagRoundTrips)
{
    const bool before = quietLogging();
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(before);
}

} // namespace
} // namespace pacache
