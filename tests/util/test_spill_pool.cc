#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/spill_pool.hh"

namespace pacache
{
namespace
{

/**
 * Minimal client: pages are byte buffers; spillPage serializes into a
 * pool slot and drops the buffer, mirroring the real containers.
 */
class VectorClient : public SpillClient
{
  public:
    explicit VectorClient(SpillPool &p) : pool(&p) {}

    std::uint32_t
    addPage(std::vector<char> data)
    {
        const std::uint32_t page =
            static_cast<std::uint32_t>(pages.size());
        pages.push_back(Page{std::move(data), 0,
                             SpillPool::kNoToken, SpillPool::kNoSlot,
                             true});
        pages[page].size = pages[page].data.size();
        pages[page].token =
            pool->add(this, page, pages[page].size, false);
        return page;
    }

    /** Fault the page back in if spilled; touch it either way. */
    std::vector<char> &
    fetch(std::uint32_t page)
    {
        Page &p = pages[page];
        if (!p.resident) {
            p.data.resize(p.size);
            pool->readSlot(p.slot, p.data.data(), p.size);
            p.resident = true;
            p.token = pool->add(this, page, p.size, false);
        } else {
            pool->touch(p.token);
        }
        return p.data;
    }

    bool resident(std::uint32_t page) const
    {
        return pages[page].resident;
    }

    std::uint32_t token(std::uint32_t page) const
    {
        return pages[page].token;
    }

    void
    spillPage(std::uint32_t page) override
    {
        Page &p = pages[page];
        if (p.slot == SpillPool::kNoSlot)
            p.slot = pool->allocSlot(p.size);
        pool->writeSlot(p.slot, p.data.data(), p.size);
        p.data.clear();
        p.data.shrink_to_fit();
        p.resident = false;
        p.token = SpillPool::kNoToken;
        ++spills;
    }

    int spills = 0;

  private:
    struct Page
    {
        std::vector<char> data;
        std::size_t size;
        std::uint32_t token;
        std::uint64_t slot;
        bool resident;
    };

    SpillPool *pool;
    std::vector<Page> pages;
};

std::vector<char>
patternPage(std::size_t n, char seed)
{
    std::vector<char> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<char>(seed + i * 7);
    return v;
}

TEST(SpillPool, StaysResidentUnderBudget)
{
    SpillPool pool(1 << 20);
    VectorClient c(pool);
    for (int i = 0; i < 8; ++i)
        c.addPage(patternPage(1024, static_cast<char>(i)));
    EXPECT_EQ(pool.evictions(), 0u);
    EXPECT_EQ(pool.residentPages(), 8u);
    EXPECT_EQ(pool.residentBytes(), 8u * 1024);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(c.resident(i));
    // No spilling means no spill file space was ever claimed.
    EXPECT_EQ(pool.spillFileBytes(), 0u);
    pool.checkInvariants();
}

TEST(SpillPool, EvictsLruBeyondBudgetAndRoundTrips)
{
    SpillPool pool(4 * 1024);
    VectorClient c(pool);
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(
            c.addPage(patternPage(1024, static_cast<char>(i))));
    // Budget holds 4 pages; the 6 oldest spilled in LRU order.
    EXPECT_EQ(pool.residentPages(), 4u);
    EXPECT_EQ(pool.evictions(), 6u);
    EXPECT_EQ(c.spills, 6);
    EXPECT_GT(pool.spillFileBytes(), 0u);
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_FALSE(c.resident(ids[i]));
    for (std::uint32_t i = 6; i < 10; ++i)
        EXPECT_TRUE(c.resident(ids[i]));

    // Faulting a spilled page back returns its exact bytes and
    // pushes out the then-LRU page to stay within budget.
    const std::vector<char> expect = patternPage(1024, 0);
    EXPECT_EQ(c.fetch(ids[0]), expect);
    EXPECT_EQ(pool.residentPages(), 4u);
    EXPECT_FALSE(c.resident(ids[6]));
    pool.checkInvariants();
}

TEST(SpillPool, TouchRefreshesLruOrder)
{
    SpillPool pool(4 * 1024);
    VectorClient c(pool);
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(
            c.addPage(patternPage(1024, static_cast<char>(i))));
    // Touch the oldest page, then overflow: the *second*-oldest is
    // now the LRU victim.
    c.fetch(ids[0]);
    c.addPage(patternPage(1024, 'z'));
    EXPECT_TRUE(c.resident(ids[0]));
    EXPECT_FALSE(c.resident(ids[1]));
    pool.checkInvariants();
}

TEST(SpillPool, PinnedPagesAreNeverVictims)
{
    SpillPool pool(2 * 1024);
    VectorClient c(pool);
    const std::uint32_t keep = c.addPage(patternPage(1024, 'k'));
    pool.pin(c.token(keep));
    for (int i = 0; i < 6; ++i)
        c.addPage(patternPage(1024, static_cast<char>(i)));
    // Despite being the LRU page throughout, the pinned page stayed.
    EXPECT_TRUE(c.resident(keep));
    EXPECT_GE(pool.evictions(), 1u);
    pool.unpin(c.token(keep));
    // Enforcement is deferred to the next add(), never the unpin
    // itself (a query's find() pointer must survive its release).
    EXPECT_TRUE(c.resident(keep));
    c.addPage(patternPage(1024, 'n'));
    EXPECT_FALSE(c.resident(keep));
    pool.checkInvariants();
}

TEST(SpillPool, SlotReuseBySizeClass)
{
    SpillPool pool(1 << 20);
    const std::uint64_t a = pool.allocSlot(512);
    const std::uint64_t b = pool.allocSlot(512);
    EXPECT_NE(a, b);
    pool.freeSlot(a, 512);
    // Freed slots of the same size are recycled before the file grows.
    const std::uint64_t c = pool.allocSlot(512);
    EXPECT_EQ(c, a);
    // A different size class gets fresh space, not the 512-byte slot.
    const std::uint64_t d = pool.allocSlot(1024);
    EXPECT_NE(d, b);

    char buf[512];
    std::memset(buf, 0x5a, sizeof(buf));
    pool.writeSlot(c, buf, sizeof(buf));
    char back[512] = {};
    pool.readSlot(c, back, sizeof(back));
    EXPECT_EQ(std::memcmp(buf, back, sizeof(buf)), 0);
}

TEST(SpillPool, UnboundedBudgetNeverSpills)
{
    SpillPool pool(static_cast<std::size_t>(-1));
    VectorClient c(pool);
    for (int i = 0; i < 64; ++i)
        c.addPage(patternPage(4096, static_cast<char>(i)));
    EXPECT_EQ(pool.evictions(), 0u);
    EXPECT_EQ(c.spills, 0);
    EXPECT_EQ(pool.spillFileBytes(), 0u);
    pool.checkInvariants();
}

} // namespace
} // namespace pacache
