#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "util/ordered_set.hh"
#include "util/spill_pool.hh"
#include "util/spill_set.hh"

namespace pacache
{
namespace
{

TEST(SpillableOrderedSet, BasicSetOperations)
{
    SpillPool pool(1 << 20);
    SpillableOrderedSet<std::size_t> s;
    s.attach(pool);

    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(5));
    EXPECT_FALSE(s.insert(5));
    EXPECT_TRUE(s.insert(1));
    EXPECT_TRUE(s.insert(9));
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains(5));
    EXPECT_FALSE(s.contains(4));

    const auto nb = s.neighbors(5);
    EXPECT_TRUE(nb.present);
    ASSERT_TRUE(nb.hasPred);
    EXPECT_EQ(nb.pred, 1u);
    ASSERT_TRUE(nb.hasSucc);
    EXPECT_EQ(nb.succ, 9u);

    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.erase(5));
    EXPECT_EQ(s.size(), 2u);
    s.checkInvariants();
}

TEST(SpillableOrderedSet, MapFormFindAndTake)
{
    SpillPool pool(1 << 20);
    SpillableOrderedSet<std::size_t, std::uint64_t> m;
    m.attach(pool);

    EXPECT_TRUE(m.insert(3, 30));
    EXPECT_TRUE(m.insert(7, 70));
    EXPECT_FALSE(m.insert(3, 99));
    ASSERT_NE(m.find(3), nullptr);
    EXPECT_EQ(*m.find(3), 30u);
    EXPECT_EQ(m.find(4), nullptr);

    std::uint64_t out = 0;
    EXPECT_TRUE(m.take(7, out));
    EXPECT_EQ(out, 70u);
    EXPECT_FALSE(m.take(7, out));
    EXPECT_EQ(m.size(), 1u);
    m.checkInvariants();
}

/**
 * Oracle comparison under a tight budget: every query an OPG replay
 * issues must answer exactly what the in-memory OrderedSet answers,
 * while pages continuously spill and refault.
 */
TEST(SpillableOrderedSet, MatchesOrderedSetUnderTightBudget)
{
    // ~4 pages resident out of hundreds: constant page churn.
    SpillPool pool(16 * 1024);
    SpillableOrderedSet<std::size_t> spilled;
    spilled.attach(pool);
    OrderedSet<std::size_t> model;

    std::mt19937_64 rng(1234);
    std::uniform_int_distribution<std::size_t> keyDist(0, 1 << 20);
    for (int step = 0; step < 60000; ++step) {
        const std::size_t k = keyDist(rng);
        switch (rng() % 4) {
          case 0: {
            EXPECT_EQ(spilled.insert(k), model.insert(k));
            break;
          }
          case 1: {
            EXPECT_EQ(spilled.erase(k), model.erase(k));
            break;
          }
          case 2: {
            const auto got = spilled.neighbors(k);
            const auto want = model.neighbors(k);
            EXPECT_EQ(got.present, want.present);
            EXPECT_EQ(got.hasPred, want.hasPred);
            EXPECT_EQ(got.hasSucc, want.hasSucc);
            if (want.hasPred)
                EXPECT_EQ(got.pred, want.pred);
            if (want.hasSucc)
                EXPECT_EQ(got.succ, want.succ);
            break;
          }
          default: {
            EXPECT_EQ(spilled.contains(k), model.contains(k));
            break;
          }
        }
    }
    EXPECT_EQ(spilled.size(), model.size());
    EXPECT_GT(spilled.faults(), 0u);
    EXPECT_GT(pool.evictions(), 0u);
    spilled.checkInvariants();

    // Full-order sweep: forEach visits the same keys ascending.
    std::vector<std::size_t> got, want;
    spilled.forEach([&](std::size_t k) { got.push_back(k); });
    model.forEach([&](std::size_t k) { want.push_back(k); });
    EXPECT_EQ(got, want);
}

TEST(SpillableOrderedSet, WithNeighborsFormsMatchModel)
{
    SpillPool pool(8 * 1024);
    SpillableOrderedSet<std::size_t> spilled;
    spilled.attach(pool);
    OrderedSet<std::size_t> model;

    std::mt19937_64 rng(77);
    std::uniform_int_distribution<std::size_t> keyDist(0, 1 << 16);
    for (int step = 0; step < 20000; ++step) {
        const std::size_t k = keyDist(rng);
        if (rng() % 2) {
            SpillableOrderedSet<std::size_t>::Neighbors got;
            OrderedSet<std::size_t>::Neighbors want;
            EXPECT_EQ(spilled.insertWithNeighbors(k, got),
                      model.insertWithNeighbors(k, want));
            EXPECT_EQ(got.hasPred, want.hasPred);
            EXPECT_EQ(got.hasSucc, want.hasSucc);
            if (want.hasPred)
                EXPECT_EQ(got.pred, want.pred);
            if (want.hasSucc)
                EXPECT_EQ(got.succ, want.succ);
        } else {
            SpillableOrderedSet<std::size_t>::Neighbors got;
            OrderedSet<std::size_t>::Neighbors want;
            EXPECT_EQ(spilled.eraseWithNeighbors(k, got),
                      model.eraseWithNeighbors(k, want));
            EXPECT_EQ(got.hasPred, want.hasPred);
            EXPECT_EQ(got.hasSucc, want.hasSucc);
            if (want.hasPred)
                EXPECT_EQ(got.pred, want.pred);
            if (want.hasSucc)
                EXPECT_EQ(got.succ, want.succ);
        }
    }
    spilled.checkInvariants();
}

TEST(SpillableOrderedSet, RangeScansMatchUnderSpill)
{
    SpillPool pool(8 * 1024);
    SpillableOrderedSet<std::size_t, std::uint32_t> spilled;
    spilled.attach(pool);
    OrderedSet<std::size_t, std::uint32_t> model;

    std::mt19937_64 rng(9);
    std::uniform_int_distribution<std::size_t> keyDist(0, 1 << 14);
    for (int i = 0; i < 8000; ++i) {
        const std::size_t k = keyDist(rng);
        const auto v = static_cast<std::uint32_t>(k * 2 + 1);
        spilled.insert(k, v);
        model.insert(k, v);
    }
    for (int i = 0; i < 200; ++i) {
        std::size_t lo = keyDist(rng);
        std::size_t hi = keyDist(rng);
        if (hi < lo)
            std::swap(lo, hi);
        std::vector<std::pair<std::size_t, std::uint32_t>> got, want;
        spilled.forEachInRange(
            lo, hi, [&](std::size_t k, std::uint32_t v) {
                got.emplace_back(k, v);
            });
        model.forEachInRange(
            lo, hi, [&](std::size_t k, std::uint32_t v) {
                want.emplace_back(k, v);
            });
        EXPECT_EQ(got, want);
    }
}

TEST(SpillableOrderedSet, EraseAtMinDrainsLikeOpgRetirement)
{
    // OPG's deterministic-miss pattern: bulk ascending seeding, then
    // erase-at-minimum retirement mixed with mid-range churn.
    SpillPool pool(4 * 1024);
    SpillableOrderedSet<std::size_t> s;
    s.attach(pool);
    const std::size_t n = 5000;
    for (std::size_t k = 0; k < n; ++k)
        EXPECT_TRUE(s.insert(k));
    EXPECT_EQ(s.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
        SpillableOrderedSet<std::size_t>::Neighbors nb;
        ASSERT_TRUE(s.eraseWithNeighbors(k, nb));
        EXPECT_FALSE(nb.hasPred);
        if (k + 1 < n) {
            ASSERT_TRUE(nb.hasSucc);
            EXPECT_EQ(nb.succ, k + 1);
        } else {
            EXPECT_FALSE(nb.hasSucc);
        }
    }
    EXPECT_TRUE(s.empty());
    s.checkInvariants();
}

TEST(SpillableOrderedSet, SharedPoolAcrossManySets)
{
    // The real deployment: one pool budgets many per-disk sets.
    SpillPool pool(8 * 1024);
    std::vector<SpillableOrderedSet<std::size_t>> sets(16);
    for (auto &s : sets)
        s.attach(pool);
    for (std::size_t k = 0; k < 2000; ++k)
        EXPECT_TRUE(sets[k % sets.size()].insert(k));
    std::size_t total = 0;
    for (auto &s : sets) {
        s.checkInvariants();
        total += s.size();
    }
    EXPECT_EQ(total, 2000u);
    EXPECT_GT(pool.evictions(), 0u);
    pool.checkInvariants();
}

} // namespace
} // namespace pacache
