#include <gtest/gtest.h>

#include <vector>

#include "util/intrusive_list.hh"

namespace pacache
{
namespace
{

using IntList = ArenaList<int>;

std::vector<int>
contents(IntList &list)
{
    std::vector<int> out;
    for (IntList::Node *n = list.front(); n; n = IntList::next(n))
        out.push_back(n->value);
    return out;
}

TEST(ArenaList, StartsEmpty)
{
    IntList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
}

TEST(ArenaList, PushFrontAndBackOrder)
{
    IntList list;
    list.pushBack(2);
    list.pushFront(1);
    list.pushBack(3);
    EXPECT_EQ(contents(list), (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(list.front()->value, 1);
    EXPECT_EQ(list.back()->value, 3);
    EXPECT_EQ(list.size(), 3u);
}

TEST(ArenaList, MoveToFrontFromMiddleAndBack)
{
    IntList list;
    list.pushBack(1);
    IntList::Node *mid = list.pushBack(2);
    IntList::Node *last = list.pushBack(3);

    list.moveToFront(mid);
    EXPECT_EQ(contents(list), (std::vector<int>{2, 1, 3}));

    list.moveToFront(last);
    EXPECT_EQ(contents(list), (std::vector<int>{3, 2, 1}));

    // Front splice is a no-op.
    list.moveToFront(list.front());
    EXPECT_EQ(contents(list), (std::vector<int>{3, 2, 1}));
    EXPECT_EQ(list.size(), 3u);
}

TEST(ArenaList, UnlinkMiddleFrontBack)
{
    IntList list;
    IntList::Node *a = list.pushBack(1);
    IntList::Node *b = list.pushBack(2);
    IntList::Node *c = list.pushBack(3);

    list.unlink(b); // middle
    EXPECT_EQ(contents(list), (std::vector<int>{1, 3}));

    list.unlink(a); // front
    EXPECT_EQ(contents(list), (std::vector<int>{3}));
    EXPECT_EQ(list.front(), list.back());

    list.unlink(c); // last
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
}

TEST(ArenaList, PopFrontBack)
{
    IntList list;
    list.pushBack(1);
    list.pushBack(2);
    list.pushBack(3);
    EXPECT_EQ(list.popBack(), 3);
    EXPECT_EQ(list.popFront(), 1);
    EXPECT_EQ(list.popBack(), 2);
    EXPECT_TRUE(list.empty());
}

TEST(ArenaList, InsertBefore)
{
    IntList list;
    IntList::Node *b = list.pushBack(2);
    list.insertBefore(b, 1);                 // before head
    list.insertBefore(nullptr, 4);           // null: append
    list.insertBefore(list.back(), 3);       // middle
    EXPECT_EQ(contents(list), (std::vector<int>{1, 2, 3, 4}));
}

TEST(ArenaList, SteadyStateChurnReusesNodes)
{
    // Insert/evict churn at fixed occupancy (the replacement-policy
    // pattern) must not grow the arena: the free list recycles every
    // unlinked node.
    IntList list;
    for (int i = 0; i < 64; ++i)
        list.pushFront(i);
    const std::size_t arena_after_fill = list.arenaSize();
    for (int round = 0; round < 100000; ++round) {
        list.popBack();
        list.pushFront(round);
    }
    EXPECT_EQ(list.size(), 64u);
    EXPECT_EQ(list.arenaSize(), arena_after_fill);
}

TEST(ArenaList, ClearRecyclesEverything)
{
    IntList list;
    for (int i = 0; i < 10; ++i)
        list.pushBack(i);
    const std::size_t arena = list.arenaSize();
    list.clear();
    EXPECT_TRUE(list.empty());
    for (int i = 0; i < 10; ++i)
        list.pushBack(i);
    EXPECT_EQ(list.arenaSize(), arena); // free list reused
    EXPECT_EQ(list.size(), 10u);
}

TEST(ArenaList, LruStackPattern)
{
    // The exact LRU usage: hit = moveToFront, evict = popBack,
    // insert = pushFront; order must match a reference trace.
    IntList list;
    IntList::Node *n1 = list.pushFront(1); // [1]
    list.pushFront(2);                     // [2 1]
    IntList::Node *n3 = list.pushFront(3); // [3 2 1]
    list.moveToFront(n1);                  // [1 3 2]
    EXPECT_EQ(list.popBack(), 2);          // [1 3]
    list.pushFront(4);                     // [4 1 3]
    list.moveToFront(n3);                  // [3 4 1]
    EXPECT_EQ(contents(list), (std::vector<int>{3, 4, 1}));
}

} // namespace
} // namespace pacache
