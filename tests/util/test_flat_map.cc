#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "util/flat_map.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

TEST(FlatMap, EmptyFindsNothing)
{
    FlatMap<uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_FALSE(m.erase(42));
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<uint64_t, int> m;
    auto [v, inserted] = m.emplace(7, 70);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, 70);
    EXPECT_EQ(m.size(), 1u);

    auto [v2, again] = m.emplace(7, 99);
    EXPECT_FALSE(again);
    EXPECT_EQ(*v2, 70); // existing value wins

    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);

    EXPECT_TRUE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, SubscriptDefaultInserts)
{
    FlatMap<uint64_t, int> m;
    m[5] = 50;
    EXPECT_EQ(m[5], 50);
    EXPECT_EQ(m[6], 0); // default-constructed
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, GrowsAndKeepsEverything)
{
    FlatMap<uint64_t, uint64_t> m;
    const std::size_t n = 10000;
    for (uint64_t k = 0; k < n; ++k)
        ASSERT_TRUE(m.emplace(k, k * 3).second);
    EXPECT_EQ(m.size(), n);
    EXPECT_GE(m.capacity(), n);
    for (uint64_t k = 0; k < n; ++k) {
        const uint64_t *v = m.find(k);
        ASSERT_NE(v, nullptr) << "key " << k;
        EXPECT_EQ(*v, k * 3);
    }
    EXPECT_EQ(m.find(n + 1), nullptr);
}

TEST(FlatMap, TombstoneChurnDoesNotGrowTable)
{
    // Steady-state insert/erase at fixed occupancy (the cache's
    // access pattern) must stabilize the table size: tombstones are
    // squashed by same-size rehashes, not by doubling forever.
    FlatMap<uint64_t, int> m;
    for (uint64_t k = 0; k < 64; ++k)
        m.emplace(k, 1);
    const std::size_t cap_after_fill = m.capacity();
    for (uint64_t round = 0; round < 100000; ++round) {
        const uint64_t dead = 64 + round;
        m.emplace(dead, 2);
        ASSERT_TRUE(m.erase(dead));
    }
    EXPECT_EQ(m.size(), 64u);
    EXPECT_LE(m.capacity(), cap_after_fill * 2);
    for (uint64_t k = 0; k < 64; ++k)
        ASSERT_NE(m.find(k), nullptr);
}

TEST(FlatMap, EraseThenReinsertReusesTombstones)
{
    FlatMap<uint64_t, int> m;
    for (uint64_t k = 0; k < 1000; ++k)
        m.emplace(k, 1);
    for (uint64_t k = 0; k < 1000; k += 2)
        ASSERT_TRUE(m.erase(k));
    EXPECT_EQ(m.size(), 500u);
    for (uint64_t k = 0; k < 1000; k += 2)
        ASSERT_TRUE(m.emplace(k, 2).second);
    EXPECT_EQ(m.size(), 1000u);
    for (uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), k % 2 == 0 ? 2 : 1);
    }
}

TEST(FlatMap, BlockIdKeys)
{
    FlatMap<BlockId, int> m;
    const BlockId a{1, 100}, b{2, 100}, c{1, 101};
    m.emplace(a, 1);
    m.emplace(b, 2);
    m.emplace(c, 3);
    EXPECT_EQ(*m.find(a), 1);
    EXPECT_EQ(*m.find(b), 2);
    EXPECT_EQ(*m.find(c), 3);
    EXPECT_TRUE(m.erase(b));
    EXPECT_EQ(m.find(b), nullptr);
    EXPECT_EQ(*m.find(a), 1);
}

TEST(FlatMap, ClearRetainsCapacity)
{
    FlatMap<uint64_t, int> m;
    for (uint64_t k = 0; k < 100; ++k)
        m.emplace(k, 1);
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), nullptr);
    m.emplace(5, 9);
    EXPECT_EQ(*m.find(5), 9);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<uint64_t, int> m;
    m.reserve(5000);
    const std::size_t cap = m.capacity();
    for (uint64_t k = 0; k < 5000; ++k)
        m.emplace(k, 1);
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn)
{
    FlatMap<uint64_t, uint64_t> m;
    std::unordered_map<uint64_t, uint64_t> ref;
    Rng rng(17);
    for (int op = 0; op < 200000; ++op) {
        const uint64_t key = rng.below(512); // small space: collisions
        switch (rng.below(3)) {
          case 0: {
            const uint64_t val = rng.next64();
            const bool inserted = m.emplace(key, val).second;
            const bool ref_inserted = ref.emplace(key, val).second;
            ASSERT_EQ(inserted, ref_inserted);
            break;
          }
          case 1:
            ASSERT_EQ(m.erase(key), ref.erase(key) > 0);
            break;
          default: {
            const uint64_t *v = m.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(v != nullptr, it != ref.end());
            if (v) {
                ASSERT_EQ(*v, it->second);
            }
          }
        }
        ASSERT_EQ(m.size(), ref.size());
    }
}

TEST(FlatMap, ForEachVisitsAllLiveEntries)
{
    FlatMap<uint64_t, int> m;
    for (uint64_t k = 0; k < 50; ++k)
        m.emplace(k, static_cast<int>(k));
    for (uint64_t k = 0; k < 50; k += 3)
        m.erase(k);
    std::vector<uint64_t> seen;
    m.forEach([&](uint64_t k, int v) {
        EXPECT_EQ(static_cast<int>(k), v);
        seen.push_back(k);
    });
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen.size(), m.size());
    for (uint64_t k : seen)
        EXPECT_NE(k % 3, 0u);
}

TEST(FlatMap, ShrinkReturnsMemoryAfterEraseChurn)
{
    FlatMap<uint64_t, uint64_t> m;
    const uint64_t n = 100000;
    for (uint64_t k = 0; k < n; ++k)
        m.emplace(k, k);
    const std::size_t peak = m.capacity();
    // Drain to 1% of peak: the table stays at peak capacity (erase
    // never shrinks)...
    for (uint64_t k = 0; k < n - n / 100; ++k)
        m.erase(k);
    EXPECT_EQ(m.capacity(), peak);
    // ...until shrink() rebuilds it at the smallest fitting size.
    m.shrink();
    EXPECT_LT(m.capacity(), peak / 4);
    // Live contents survive the rebuild.
    EXPECT_EQ(m.size(), n / 100);
    for (uint64_t k = n - n / 100; k < n; ++k) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), k);
    }
}

TEST(FlatMap, ShrinkIsANoOpWhenRightSized)
{
    FlatMap<uint64_t, int> m;
    for (uint64_t k = 0; k < 1000; ++k)
        m.emplace(k, 1);
    const std::size_t cap = m.capacity();
    // Nearly full table: shrink must not thrash.
    m.shrink();
    EXPECT_EQ(m.capacity(), cap);
    // Empty map with no table: shrink must not allocate.
    FlatMap<uint64_t, int> empty;
    empty.shrink();
    EXPECT_EQ(empty.capacity(), 0u);
}

} // namespace
} // namespace pacache
