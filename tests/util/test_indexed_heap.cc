/**
 * @file
 * IndexedHeap unit tests plus a randomized differential check against
 * a std::set model: every operation mix a caller can issue (push,
 * update up/down, erase by handle, pop) must keep the heap's top and
 * size identical to the model's minimum, with validate() passing
 * throughout.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/indexed_heap.hh"

namespace pacache
{
namespace
{

TEST(IndexedHeap, PopsInAscendingOrder)
{
    IndexedHeap<int> heap;
    std::vector<int> keys{9, 3, 7, 1, 8, 2, 6, 0, 5, 4};
    for (int k : keys)
        heap.push(k);
    ASSERT_EQ(heap.size(), keys.size());

    std::vector<int> popped;
    while (!heap.empty()) {
        popped.push_back(heap.top());
        heap.pop();
    }
    EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
    EXPECT_EQ(popped.size(), keys.size());
}

TEST(IndexedHeap, HandlesStayStableAcrossChurn)
{
    IndexedHeap<int> heap;
    const auto h42 = heap.push(42);
    std::vector<IndexedHeap<int>::Handle> others;
    for (int k = 0; k < 100; ++k)
        others.push_back(heap.push(k));
    for (std::size_t i = 0; i < others.size(); i += 2)
        heap.erase(others[i]);
    heap.validate();
    EXPECT_EQ(heap.key(h42), 42);
}

TEST(IndexedHeap, UpdateMovesBothDirections)
{
    IndexedHeap<int> heap;
    heap.push(10);
    heap.push(20);
    const auto h = heap.push(30);

    heap.update(h, 5); // decrease: must become the new top
    heap.validate();
    EXPECT_EQ(heap.top(), 5);
    EXPECT_EQ(heap.topHandle(), h);

    heap.update(h, 25); // increase: must sink back down
    heap.validate();
    EXPECT_EQ(heap.top(), 10);
    EXPECT_EQ(heap.key(h), 25);
}

TEST(IndexedHeap, EraseOfNonTopKeepsOrder)
{
    IndexedHeap<int> heap;
    std::vector<IndexedHeap<int>::Handle> hs;
    for (int k = 0; k < 50; ++k)
        hs.push_back(heap.push(k));
    heap.erase(hs[25]);
    heap.erase(hs[49]);
    heap.erase(hs[0]);
    heap.validate();
    EXPECT_EQ(heap.size(), 47u);
    EXPECT_EQ(heap.top(), 1);
}

TEST(IndexedHeap, FreeListRecyclesSlots)
{
    IndexedHeap<int> heap;
    const auto a = heap.push(1);
    const auto b = heap.push(2);
    heap.erase(a);
    heap.erase(b);
    // LIFO free list: the most recently erased slot comes back first.
    EXPECT_EQ(heap.push(3), b);
    EXPECT_EQ(heap.push(4), a);
    heap.validate();
}

TEST(IndexedHeap, MaxHeapViaComparator)
{
    IndexedHeap<int, std::greater<int>> heap;
    for (int k : {3, 9, 1, 7})
        heap.push(k);
    EXPECT_EQ(heap.top(), 9);
    heap.pop();
    EXPECT_EQ(heap.top(), 7);
    heap.validate();
}

TEST(IndexedHeap, ClearThenReuse)
{
    IndexedHeap<int> heap;
    for (int k = 0; k < 10; ++k)
        heap.push(k);
    heap.clear();
    EXPECT_TRUE(heap.empty());
    heap.push(5);
    EXPECT_EQ(heap.top(), 5);
    heap.validate();
}

TEST(IndexedHeap, RandomizedDifferentialVsSet)
{
    // Model: a std::set of (key, uid) pairs mirroring every live
    // element; the heap top must always equal the model minimum.
    using Elem = std::pair<int, std::uint32_t>;
    IndexedHeap<Elem> heap;
    std::set<Elem> model;
    std::unordered_map<std::uint32_t, IndexedHeap<Elem>::Handle> live;
    std::uint32_t nextUid = 0;

    std::mt19937_64 rng(1234);
    auto randomLive = [&]() {
        auto it = live.begin();
        std::advance(it, rng() % live.size());
        return it;
    };

    for (int step = 0; step < 20000; ++step) {
        const int op = static_cast<int>(rng() % 100);
        if (live.empty() || op < 40) {
            const Elem e{static_cast<int>(rng() % 500), nextUid++};
            live[e.second] = heap.push(e);
            model.insert(e);
        } else if (op < 60) {
            auto it = randomLive();
            const Elem old = heap.key(it->second);
            const Elem fresh{static_cast<int>(rng() % 500), it->first};
            heap.update(it->second, fresh);
            model.erase(old);
            model.insert(fresh);
        } else if (op < 80) {
            auto it = randomLive();
            model.erase(heap.key(it->second));
            heap.erase(it->second);
            live.erase(it);
        } else {
            const Elem top = heap.top();
            ASSERT_EQ(top, *model.begin());
            live.erase(top.second);
            model.erase(model.begin());
            heap.pop();
        }
        ASSERT_EQ(heap.size(), model.size());
        if (!heap.empty())
            ASSERT_EQ(heap.top(), *model.begin());
        if (step % 500 == 0)
            heap.validate();
    }
    heap.validate();

    // Drain: full pop order must match the model's sorted order.
    while (!model.empty()) {
        ASSERT_EQ(heap.top(), *model.begin());
        model.erase(model.begin());
        heap.pop();
    }
    EXPECT_TRUE(heap.empty());
}

} // namespace
} // namespace pacache
