#include <gtest/gtest.h>

#include "util/bloom_filter.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

TEST(BloomFilter, EmptyContainsNothing)
{
    BloomFilter bf(1024, 3);
    for (uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(bf.test(k));
}

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter bf(1u << 16, 4);
    for (uint64_t k = 0; k < 5000; ++k)
        bf.insert(k * 2654435761ULL);
    for (uint64_t k = 0; k < 5000; ++k)
        EXPECT_TRUE(bf.test(k * 2654435761ULL));
}

TEST(BloomFilter, TestAndInsertDetectsColdMiss)
{
    BloomFilter bf(1u << 14, 4);
    EXPECT_TRUE(bf.testAndInsert(42));   // first time: cold
    EXPECT_FALSE(bf.testAndInsert(42));  // second time: warm
}

TEST(BloomFilter, FalsePositiveRateIsSmall)
{
    // m=2^20 bits, n=10^5, k=4 -> theoretical fp ~ 1.0%.
    BloomFilter bf(1u << 20, 4);
    Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        bf.insert(rng.next64());

    int fp = 0;
    const int probes = 100000;
    Rng other(77777);
    for (int i = 0; i < probes; ++i)
        fp += bf.test(other.next64());
    EXPECT_LT(static_cast<double>(fp) / probes, 0.02);
    EXPECT_LT(bf.expectedFalsePositiveRate(), 0.02);
    // Empirical rate tracks the analytic estimate.
    EXPECT_NEAR(static_cast<double>(fp) / probes,
                bf.expectedFalsePositiveRate(), 0.005);
}

TEST(BloomFilter, ClearForgetsEverything)
{
    BloomFilter bf(4096, 3);
    for (uint64_t k = 0; k < 50; ++k)
        bf.insert(k);
    bf.clear();
    for (uint64_t k = 0; k < 50; ++k)
        EXPECT_FALSE(bf.test(k));
    EXPECT_EQ(bf.insertions(), 0u);
}

TEST(BloomFilter, SizeRoundsUpToWords)
{
    BloomFilter bf(65, 2);
    EXPECT_EQ(bf.sizeBits(), 128u);
}

TEST(BloomFilter, CountsInsertions)
{
    BloomFilter bf(1024, 2);
    bf.insert(1);
    bf.insert(2);
    bf.insert(1); // duplicates still count as insert operations
    EXPECT_EQ(bf.insertions(), 3u);
}

TEST(BloomFilter, ExpectedFpGrowsWithFill)
{
    BloomFilter bf(4096, 4);
    const double before = bf.expectedFalsePositiveRate();
    for (uint64_t k = 0; k < 1000; ++k)
        bf.insert(k);
    EXPECT_GT(bf.expectedFalsePositiveRate(), before);
}

} // namespace
} // namespace pacache
