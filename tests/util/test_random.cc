#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hh"

namespace pacache
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(15);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i)
        seen[rng.below(10)]++;
    for (int c : seen)
        EXPECT_GT(c, 700); // roughly uniform
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_ANY_THROW(rng.below(0));
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoMinimumIsScale)
{
    Rng rng(21);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.pareto(1.5, 3.0), 3.0);
}

TEST(Rng, ParetoMeanMatchesTheory)
{
    // mean = shape*scale/(shape-1); use shape 3 so the variance is
    // finite and the sample mean converges quickly.
    Rng rng(23);
    double sum = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        sum += rng.pareto(3.0, 2.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(25);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Zipf, SampleWithinPopulation)
{
    Rng rng(27);
    ZipfSampler z(100, 0.9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(29);
    ZipfSampler z(1000, 1.0);
    int low = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        low += z.sample(rng) < 10;
    // With theta=1 the first 10 of 1000 ranks carry far more than 1%
    // of the mass.
    EXPECT_GT(low, n / 5);
}

TEST(Zipf, ZeroThetaIsUniform)
{
    Rng rng(31);
    ZipfSampler z(10, 0.0);
    std::vector<int> seen(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        seen[z.sample(rng)]++;
    for (int c : seen)
        EXPECT_NEAR(c, n / 10, n / 50);
}

TEST(Zipf, SingletonPopulation)
{
    Rng rng(33);
    ZipfSampler z(1, 1.2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

} // namespace
} // namespace pacache
