#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_set>
#include <vector>

#include "util/seen_filter.hh"

namespace pacache
{
namespace
{

TEST(SparseSeenSet, FirstInsertTrueSecondFalse)
{
    SparseSeenSet seen;
    EXPECT_TRUE(seen.testAndSet(42));
    EXPECT_FALSE(seen.testAndSet(42));
    EXPECT_TRUE(seen.testAndSet(43));
    EXPECT_EQ(seen.size(), 2u);
    seen.checkInvariants();
}

TEST(SparseSeenSet, MatchesHashSetOnSparseKeys)
{
    // Raw-sector-style keys: clustered runs spread across a huge
    // space, with re-touches — the cold-miss counter's access shape.
    SparseSeenSet seen;
    std::unordered_set<std::uint64_t> model;
    std::mt19937_64 rng(42);
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t base = (rng() % 4096) << 20;
        const std::uint64_t key = base + (rng() % 8192);
        EXPECT_EQ(seen.testAndSet(key), model.insert(key).second);
    }
    EXPECT_EQ(seen.size(), model.size());
    seen.checkInvariants();
}

TEST(SparseSeenSet, ExactUnderTightBudgetWithSpills)
{
    // A few pages resident; everything else lives in the spill file.
    SparseSeenSet seen(4 * 1024);
    std::unordered_set<std::uint64_t> model;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 200000; ++i) {
        // Cycle through many distinct bitmap pages to force spills,
        // and revisit keys often to exercise the overlay merge path.
        const std::uint64_t page = rng() % 512;
        const std::uint64_t key = (page << 12) + (rng() % 4096);
        EXPECT_EQ(seen.testAndSet(key), model.insert(key).second);
    }
    EXPECT_EQ(seen.size(), model.size());
    EXPECT_GT(seen.pages(), seen.residentPages());
    seen.checkInvariants();
}

TEST(SparseSeenSet, BlindInsertsSkipReads)
{
    // Tiny budget + disjoint key ranges: revisiting a spilled page's
    // range with brand-new keys should use the sketch's "definitely
    // new" verdict and insert without a pread.
    SparseSeenSet seen(1024);
    // Touch many pages once each so earlier ones spill.
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_TRUE(seen.testAndSet(p << 12));
    // New keys on the long-spilled first pages.
    for (std::uint64_t p = 0; p < 8; ++p)
        EXPECT_TRUE(seen.testAndSet((p << 12) + 100));
    EXPECT_GT(seen.blindInserts(), 0u);
    // Still exact: the original keys remain seen (forces merges).
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_FALSE(seen.testAndSet(p << 12));
    for (std::uint64_t p = 0; p < 8; ++p)
        EXPECT_FALSE(seen.testAndSet((p << 12) + 100));
    EXPECT_EQ(seen.size(), 64u + 8u);
    seen.checkInvariants();
}

TEST(SparseSeenSet, DenseSinglePageNeverSpills)
{
    SparseSeenSet seen;
    for (std::uint64_t b = 0; b < 4096; ++b)
        EXPECT_TRUE(seen.testAndSet(b));
    for (std::uint64_t b = 0; b < 4096; ++b)
        EXPECT_FALSE(seen.testAndSet(b));
    EXPECT_EQ(seen.size(), 4096u);
    EXPECT_EQ(seen.pages(), 1u);
    EXPECT_EQ(seen.pageFaults(), 0u);
    seen.checkInvariants();
}

} // namespace
} // namespace pacache
