#include <gtest/gtest.h>

#include "util/histogram.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

TEST(Histogram, EmptyReportsZero)
{
    auto h = IntervalHistogram::geometric(0.001, 1000.0);
    EXPECT_EQ(h.sampleCount(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MeanIsExact)
{
    auto h = IntervalHistogram::geometric(0.001, 1000.0);
    h.record(1.0);
    h.record(2.0);
    h.record(3.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_EQ(h.sampleCount(), 3u);
}

TEST(Histogram, CdfMonotone)
{
    auto h = IntervalHistogram::geometric(0.01, 100.0, 4);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        h.record(rng.exponential(5.0));
    double prev = 0;
    for (double x = 0.01; x < 200.0; x *= 1.5) {
        const double c = h.cdf(x);
        EXPECT_GE(c, prev);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
}

TEST(Histogram, CdfApproximatesUniformDistribution)
{
    auto h = IntervalHistogram::geometric(0.01, 100.0, 16);
    Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        h.record(rng.uniform(0.01, 10.0));
    EXPECT_NEAR(h.cdf(5.0), 0.5, 0.05);
    EXPECT_NEAR(h.cdf(10.0), 1.0, 0.01);
}

TEST(Histogram, QuantileInvertsCdf)
{
    auto h = IntervalHistogram::geometric(0.001, 1000.0, 16);
    Rng rng(7);
    for (int i = 0; i < 100000; ++i)
        h.record(rng.exponential(2.0));
    // Median of Exp(mean 2) is 2*ln2 ~ 1.386.
    EXPECT_NEAR(h.quantile(0.5), 1.386, 0.15);
    // 80th percentile: -2*ln(0.2) ~ 3.22.
    EXPECT_NEAR(h.quantile(0.8), 3.22, 0.35);
}

TEST(Histogram, QuantileClampsProbability)
{
    auto h = IntervalHistogram::geometric(0.1, 10.0);
    h.record(1.0);
    EXPECT_GE(h.quantile(-1.0), 0.0);
    EXPECT_LE(h.quantile(2.0), 10.0);
}

TEST(Histogram, ResetClears)
{
    auto h = IntervalHistogram::geometric(0.1, 10.0);
    h.record(1.0);
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.sampleCount(), 0u);
    EXPECT_DOUBLE_EQ(h.cdf(100.0), 0.0);
}

TEST(Histogram, OverflowBinCatchesLargeValues)
{
    auto h = IntervalHistogram::geometric(0.1, 10.0);
    h.record(1e9);
    EXPECT_EQ(h.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(h.cdf(10.0), 0.0);
    // The overflow sample is reported at the last finite edge.
    EXPECT_NEAR(h.quantile(1.0), 10.0, 1e-9);
}

TEST(Histogram, UnderflowGoesToFirstBin)
{
    auto h = IntervalHistogram::geometric(1.0, 100.0);
    h.record(0.001);
    EXPECT_GT(h.cdf(1.0), 0.99);
}

TEST(Histogram, ExplicitEdgesValidated)
{
    EXPECT_ANY_THROW(IntervalHistogram({3.0, 2.0, 1.0}));
    EXPECT_ANY_THROW(IntervalHistogram(std::vector<double>{}));
}

TEST(Histogram, CountsPerBin)
{
    IntervalHistogram h({1.0, 2.0, 3.0});
    h.record(0.5);  // bin 0 (< 1)
    h.record(1.5);  // bin 1
    h.record(2.5);  // bin 2
    h.record(9.0);  // overflow bin
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.counts()[3], 1u);
}

} // namespace
} // namespace pacache
