#include <gtest/gtest.h>

#include <sstream>

#include "util/json.hh"

namespace pacache
{
namespace
{

TEST(JsonValue, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(JsonValue, ParsesNestedDocument)
{
    const JsonValue v = JsonValue::parse(R"({
        "policies": ["lru", "pa-lru"],
        "cache_mb": [32, 64],
        "nested": {"deep": {"flag": true}},
        "label": "fig6"
    })");
    ASSERT_TRUE(v.isObject());
    const JsonValue *policies = v.find("policies");
    ASSERT_NE(policies, nullptr);
    ASSERT_TRUE(policies->isArray());
    ASSERT_EQ(policies->asArray().size(), 2u);
    EXPECT_EQ(policies->asArray()[0].asString(), "lru");
    EXPECT_EQ(policies->asArray()[1].asString(), "pa-lru");

    const JsonValue *sizes = v.find("cache_mb");
    ASSERT_NE(sizes, nullptr);
    EXPECT_DOUBLE_EQ(sizes->asArray()[1].asNumber(), 64.0);

    const JsonValue *deep = v.find("nested")->find("deep");
    ASSERT_NE(deep, nullptr);
    EXPECT_TRUE(deep->find("flag")->asBool());

    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonValue, StringEscapes)
{
    const JsonValue v =
        JsonValue::parse(R"("a\"b\\c\/d\n\tAé")");
    EXPECT_EQ(v.asString(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonValue, EmptyContainers)
{
    EXPECT_TRUE(JsonValue::parse("[]").asArray().empty());
    EXPECT_TRUE(JsonValue::parse("{}").asObject().empty());
    EXPECT_TRUE(JsonValue::parse(" [ ] ").asArray().empty());
}

TEST(JsonValue, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("nan"), std::runtime_error);
}

TEST(JsonValue, KindMismatchIsFatal)
{
    const JsonValue v = JsonValue::parse("42");
    EXPECT_THROW(v.asString(), std::exception);
    EXPECT_THROW(v.asArray(), std::exception);
    EXPECT_EQ(v.find("key"), nullptr); // find on non-object is benign
}

TEST(JsonValue, RoundTripsThroughWriter)
{
    // A document produced by JsonWriter must parse back.
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.kv("name", "sweep");
        w.key("sizes").beginArray().value(16).value(32).endArray();
        w.kv("ratio", 0.125);
        w.kv("enabled", true);
        w.endObject();
    }
    const JsonValue v = JsonValue::parse(os.str());
    EXPECT_EQ(v.find("name")->asString(), "sweep");
    EXPECT_DOUBLE_EQ(v.find("sizes")->asArray()[1].asNumber(), 32.0);
    EXPECT_DOUBLE_EQ(v.find("ratio")->asNumber(), 0.125);
    EXPECT_TRUE(v.find("enabled")->asBool());
}

} // namespace
} // namespace pacache
