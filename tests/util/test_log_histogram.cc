#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/log_histogram.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

// Exact nearest-rank quantile over a sorted copy, the reference the
// histogram is allowed to deviate from by kMaxRelativeError.
double
exactQuantile(std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const auto n = sorted.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(n)));
    rank = std::max<std::size_t>(rank, 1);
    rank = std::min(rank, n);
    return sorted[rank - 1];
}

TEST(LogHistogramTest, EmptyIsZero)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogramTest, BucketIndexRoundTrips)
{
    // Every probed value must land in a bucket whose [low, high)
    // range contains it.
    const double probes[] = {1e-7, 0.001, 0.4,  0.5,    1.0,
                             1.5,  2.0,   3.75, 1000.0, 3.2e9};
    for (const double v : probes)
    {
        const int idx = LogHistogram::bucketIndex(v);
        ASSERT_GT(idx, 0) << v;
        ASSERT_LT(idx, LogHistogram::kNumBuckets) << v;
        EXPECT_LE(LogHistogram::bucketLow(idx), v) << v;
        EXPECT_GT(LogHistogram::bucketHigh(idx), v) << v;
    }
}

TEST(LogHistogramTest, ZeroNegativeAndExtremeValues)
{
    LogHistogram h;
    h.record(0.0);
    h.record(-3.0);
    h.record(1e-300); // underflows the octave range
    h.record(1e300);  // overflows the octave range
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), 1e300);
    EXPECT_EQ(LogHistogram::bucketIndex(0.0), 0);
    EXPECT_EQ(LogHistogram::bucketIndex(-1.0), 0);
    EXPECT_EQ(LogHistogram::bucketIndex(1e-300), 1);
    EXPECT_EQ(LogHistogram::bucketIndex(1e300),
              LogHistogram::kNumBuckets - 1);
    // Quantiles stay inside [min, max] even for clamped buckets.
    for (const double p : {0.0, 0.25, 0.5, 0.75, 1.0})
    {
        EXPECT_GE(h.quantile(p), h.min());
        EXPECT_LE(h.quantile(p), h.max());
    }
}

TEST(LogHistogramTest, SingleValueQuantilesAreExact)
{
    LogHistogram h;
    h.record(0.0137);
    for (const double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(p), 0.0137);
}

TEST(LogHistogramTest, QuantilesMonotonic)
{
    LogHistogram h;
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        h.record(std::exp(rng.uniform(-10.0, 10.0)));
    double prev = h.quantile(0.0);
    for (const double p : {0.25, 0.5, 0.95, 0.99, 1.0})
    {
        const double q = h.quantile(p);
        EXPECT_GE(q, prev) << "p=" << p;
        prev = q;
    }
    EXPECT_LE(h.quantile(0.99), h.max());
}

TEST(LogHistogramTest, MillionSampleQuantilesWithinOnePercent)
{
    // The acceptance regression: 1e6 samples from a heavy-tailed
    // latency-like mixture; p50/p95/p99 must sit within 1% of the
    // exact nearest-rank values while the histogram footprint stays
    // fixed at kNumBuckets counters.
    LogHistogram h;
    std::vector<double> samples;
    samples.reserve(1000000);
    Rng rng(42);
    for (int i = 0; i < 1000000; ++i)
    {
        double v = 0.004 + rng.uniform(0.0, 0.01);
        if (rng.uniform(0.0, 1.0) < 0.05)
            v += std::exp(rng.uniform(-2.0, 3.0)); // spin-up tail
        samples.push_back(v);
        h.record(v);
    }
    EXPECT_EQ(h.count(), 1000000u);
    for (const double p : {0.50, 0.95, 0.99})
    {
        const double exact = exactQuantile(samples, p);
        const double approx = h.quantile(p);
        EXPECT_NEAR(approx, exact, 0.01 * exact) << "p=" << p;
        EXPECT_NEAR(approx, exact,
                    LogHistogram::kMaxRelativeError * exact)
            << "p=" << p;
    }
    EXPECT_DOUBLE_EQ(h.quantile(1.0),
                     *std::max_element(samples.begin(),
                                       samples.end()));
}

TEST(LogHistogramTest, MergeEqualsWholeOnBuckets)
{
    // Split the same stream across 4 shards; merging them must
    // reproduce the serially recorded histogram exactly on every
    // bucket-derived statistic, regardless of merge order.
    LogHistogram whole;
    LogHistogram shards[4];
    Rng rng(11);
    for (int i = 0; i < 50000; ++i)
    {
        const double v = std::exp(rng.uniform(-8.0, 4.0));
        whole.record(v);
        shards[i % 4].record(v);
    }
    LogHistogram merged;
    for (const int s : {2, 0, 3, 1})
        merged.merge(shards[s]);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_DOUBLE_EQ(merged.bucketSum(), whole.bucketSum());
    EXPECT_DOUBLE_EQ(merged.bucketMean(), whole.bucketMean());
    for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(merged.quantile(p), whole.quantile(p));
    for (int i = 0; i < LogHistogram::kNumBuckets; ++i)
        ASSERT_EQ(merged.bucketCount(i), whole.bucketCount(i));
}

TEST(LogHistogramTest, MergeIntoEmptyAndFromEmpty)
{
    LogHistogram a, b, empty;
    b.record(2.5);
    a.merge(b); // into empty
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 2.5);
    a.merge(empty); // from empty is a no-op
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.max(), 2.5);
}

TEST(LogHistogramTest, BucketSumTracksExactSum)
{
    LogHistogram h;
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        h.record(rng.uniform(0.001, 50.0));
    EXPECT_NEAR(h.bucketSum(), h.sum(),
                LogHistogram::kMaxRelativeError * h.sum());
    EXPECT_NEAR(h.bucketMean(), h.mean(),
                LogHistogram::kMaxRelativeError * h.mean());
}

TEST(LogHistogramTest, RecordNAndClear)
{
    LogHistogram h;
    h.recordN(1.0, 10);
    h.recordN(4.0, 0); // n == 0 records nothing
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

} // namespace
} // namespace pacache
