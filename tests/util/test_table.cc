#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace pacache
{
namespace
{

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NoHeaderNoRule)
{
    TextTable t;
    t.row({"x", "y"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str().find("---"), std::string::npos);
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Table, FmtPct)
{
    EXPECT_EQ(fmtPct(0.163, 1), "16.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

} // namespace
} // namespace pacache
