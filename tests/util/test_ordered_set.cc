/**
 * @file
 * OrderedSet unit tests plus randomized differential checks against
 * std::set / std::map models, sized to force chunk splits and
 * empty-chunk removal. neighbors() and forEachInRange() — the two
 * queries OPG's hot path depends on — are cross-checked against the
 * model on every round.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "util/ordered_set.hh"

namespace pacache
{
namespace
{

TEST(OrderedSet, InsertEraseContains)
{
    OrderedSet<std::size_t> s;
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(5));
    EXPECT_FALSE(s.insert(5)); // duplicate rejected
    EXPECT_TRUE(s.insert(3));
    EXPECT_TRUE(s.insert(9));
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains(5));
    EXPECT_FALSE(s.contains(4));
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
    EXPECT_EQ(s.size(), 2u);
    s.checkInvariants();
}

TEST(OrderedSet, NeighborsOnEmptyAndSingleton)
{
    OrderedSet<std::size_t> s;
    auto nb = s.neighbors(10);
    EXPECT_FALSE(nb.hasPred);
    EXPECT_FALSE(nb.hasSucc);
    EXPECT_FALSE(nb.present);

    s.insert(10);
    nb = s.neighbors(10);
    EXPECT_TRUE(nb.present);
    EXPECT_FALSE(nb.hasPred);
    EXPECT_FALSE(nb.hasSucc);

    nb = s.neighbors(5);
    EXPECT_FALSE(nb.present);
    EXPECT_FALSE(nb.hasPred);
    ASSERT_TRUE(nb.hasSucc);
    EXPECT_EQ(nb.succ, 10u);

    nb = s.neighbors(15);
    EXPECT_FALSE(nb.present);
    ASSERT_TRUE(nb.hasPred);
    EXPECT_EQ(nb.pred, 10u);
    EXPECT_FALSE(nb.hasSucc);
}

TEST(OrderedSet, PredecessorSuccessorAreStrict)
{
    OrderedSet<std::size_t> s;
    for (std::size_t k : {10u, 20u, 30u})
        s.insert(k);
    std::size_t out = 0;
    EXPECT_TRUE(s.predecessor(20, out));
    EXPECT_EQ(out, 10u); // strictly less, not the key itself
    EXPECT_TRUE(s.successor(20, out));
    EXPECT_EQ(out, 30u);
    EXPECT_FALSE(s.predecessor(10, out));
    EXPECT_FALSE(s.successor(30, out));
}

TEST(OrderedSet, RangeVisitIsExclusiveBothEnds)
{
    OrderedSet<std::size_t> s;
    for (std::size_t k = 0; k < 10; ++k)
        s.insert(k * 10);
    std::vector<std::size_t> seen;
    s.forEachInRange(20, 60, [&](std::size_t k) { seen.push_back(k); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{30, 40, 50}));
}

TEST(OrderedSet, SplitsAndDrainsChunks)
{
    // 3000 keys forces multiple chunk splits; erasing every key
    // afterwards must drain every chunk without tripping invariants.
    OrderedSet<std::size_t> s;
    for (std::size_t k = 0; k < 3000; ++k)
        s.insert((k * 2654435761u) % 100000);
    s.checkInvariants();
    const std::size_t n = s.size();
    std::vector<std::size_t> keys;
    s.forEach([&](std::size_t k) { keys.push_back(k); });
    ASSERT_EQ(keys.size(), n);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    for (std::size_t k : keys)
        EXPECT_TRUE(s.erase(k));
    EXPECT_TRUE(s.empty());
    s.checkInvariants();
}

TEST(OrderedSet, MappedFormStoresValues)
{
    OrderedSet<std::size_t, std::uint32_t> m;
    EXPECT_TRUE(m.insert(7, 70u));
    EXPECT_TRUE(m.insert(3, 30u));
    EXPECT_FALSE(m.insert(7, 99u)); // duplicate key keeps old value
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70u);
    EXPECT_EQ(m.find(5), nullptr);

    std::vector<std::pair<std::size_t, std::uint32_t>> seen;
    m.forEach([&](std::size_t k, std::uint32_t v) {
        seen.emplace_back(k, v);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<std::size_t, std::uint32_t>{3, 30}));
    EXPECT_EQ(seen[1], (std::pair<std::size_t, std::uint32_t>{7, 70}));
    m.checkInvariants();
}

TEST(OrderedSet, RandomizedDifferentialVsStdSet)
{
    OrderedSet<std::size_t> s;
    std::set<std::size_t> model;
    std::mt19937_64 rng(99);
    const std::size_t universe = 4096;

    for (int step = 0; step < 30000; ++step) {
        const std::size_t k = rng() % universe;
        switch (rng() % 4) {
        case 0:
        case 1: // bias toward growth so chunks split
            ASSERT_EQ(s.insert(k), model.insert(k).second);
            break;
        case 2:
            ASSERT_EQ(s.erase(k), model.erase(k) > 0);
            break;
        default: {
            ASSERT_EQ(s.contains(k), model.count(k) > 0);
            const auto nb = s.neighbors(k);
            auto it = model.lower_bound(k);
            const bool present = it != model.end() && *it == k;
            ASSERT_EQ(nb.present, present);
            if (it == model.begin()) {
                ASSERT_FALSE(nb.hasPred);
            } else {
                ASSERT_TRUE(nb.hasPred);
                ASSERT_EQ(nb.pred, *std::prev(it));
            }
            auto succ = model.upper_bound(k);
            if (succ == model.end()) {
                ASSERT_FALSE(nb.hasSucc);
            } else {
                ASSERT_TRUE(nb.hasSucc);
                ASSERT_EQ(nb.succ, *succ);
            }
            break;
        }
        }
        ASSERT_EQ(s.size(), model.size());
        if (step % 1000 == 0)
            s.checkInvariants();
    }
    s.checkInvariants();

    // Range scans at random bounds must agree with the model.
    for (int round = 0; round < 200; ++round) {
        std::size_t lo = rng() % universe;
        std::size_t hi = rng() % universe;
        if (hi < lo)
            std::swap(lo, hi);
        std::vector<std::size_t> got;
        s.forEachInRange(lo, hi,
                         [&](std::size_t k) { got.push_back(k); });
        std::vector<std::size_t> want;
        for (auto it = model.upper_bound(lo);
             it != model.end() && *it < hi; ++it)
            want.push_back(*it);
        ASSERT_EQ(got, want) << "range (" << lo << ", " << hi << ")";
    }
}

TEST(OrderedSet, RandomizedDifferentialVsStdMap)
{
    OrderedSet<std::size_t, std::uint64_t> m;
    std::map<std::size_t, std::uint64_t> model;
    std::mt19937_64 rng(7);

    for (int step = 0; step < 20000; ++step) {
        const std::size_t k = rng() % 2048;
        const std::uint64_t v = rng();
        switch (rng() % 3) {
        case 0:
        case 1:
            ASSERT_EQ(m.insert(k, v), model.emplace(k, v).second);
            break;
        default:
            ASSERT_EQ(m.erase(k), model.erase(k) > 0);
            break;
        }
        const std::size_t probe = rng() % 2048;
        auto it = model.find(probe);
        const std::uint64_t *got = m.find(probe);
        if (it == model.end()) {
            ASSERT_EQ(got, nullptr);
        } else {
            ASSERT_NE(got, nullptr);
            ASSERT_EQ(*got, it->second);
        }
        if (step % 1000 == 0)
            m.checkInvariants();
    }
    m.checkInvariants();

    // Mapped range scan carries the values along.
    std::vector<std::pair<std::size_t, std::uint64_t>> got, want;
    m.forEachInRange(100, 1900, [&](std::size_t k, std::uint64_t v) {
        got.emplace_back(k, v);
    });
    for (auto it = model.upper_bound(100);
         it != model.end() && it->first < 1900; ++it)
        want.emplace_back(it->first, it->second);
    EXPECT_EQ(got, want);
}

} // namespace
} // namespace pacache
