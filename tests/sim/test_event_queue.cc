#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace pacache
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&](Time) { order.push_back(3); });
    eq.schedule(1.0, [&](Time) { order.push_back(1); });
    eq.schedule(2.0, [&](Time) { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, SameTimeFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5.0, [&, i](Time) { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackSeesEventTime)
{
    EventQueue eq;
    Time seen = -1;
    eq.schedule(4.5, [&](Time t) { seen = t; });
    eq.runAll();
    EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueue, CancelRemovesEvent)
{
    EventQueue eq;
    bool fired = false;
    auto h = eq.schedule(1.0, [&](Time) { fired = true; });
    EXPECT_TRUE(eq.pending(h));
    EXPECT_TRUE(eq.cancel(h));
    EXPECT_FALSE(eq.pending(h));
    eq.runAll();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse)
{
    EventQueue eq;
    auto h = eq.schedule(1.0, [](Time) {});
    EXPECT_TRUE(eq.cancel(h));
    EXPECT_FALSE(eq.cancel(h));
}

TEST(EventQueue, CancelDefaultHandleIsFalse)
{
    EventQueue eq;
    EventQueue::Handle h;
    EXPECT_FALSE(eq.cancel(h));
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    Time fired_at = -1;
    eq.schedule(2.0, [&](Time) {
        eq.scheduleAfter(3.0, [&](Time t) { fired_at = t; });
    });
    eq.runAll();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [](Time) {});
    eq.runAll();
    EXPECT_ANY_THROW(eq.schedule(1.0, [](Time) {}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1.0, [&](Time) { order.push_back(1); });
    eq.schedule(2.0, [&](Time) { order.push_back(2); });
    eq.schedule(3.0, [&](Time) { order.push_back(3); });
    eq.runUntil(2.0); // inclusive
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(7.0);
    EXPECT_DOUBLE_EQ(eq.now(), 7.0);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void(Time)> chain = [&](Time) {
        if (++depth < 5)
            eq.scheduleAfter(1.0, chain);
    };
    eq.schedule(0.0, chain);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_DOUBLE_EQ(eq.now(), 4.0);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace pacache
