/**
 * @file
 * A deliberately broken Belady used to exercise the qa differential
 * harness and shrinker: identical bookkeeping to
 * ReferenceBeladyPolicy, but evict() returns the block whose next use
 * is *soonest* — the exact inversion of MIN. Any trace where eviction
 * order matters makes it diverge from the reference.
 */

#ifndef PACACHE_TESTS_SUPPORT_FAULTY_BELADY_HH
#define PACACHE_TESTS_SUPPORT_FAULTY_BELADY_HH

#include <set>
#include <unordered_map>
#include <utility>

#include "cache/policy.hh"
#include "util/logging.hh"

namespace pacache::test
{

/** Belady with the victim comparison inverted (injected fault). */
class NearestNextPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "Belady-nearest"; }

    void
    prepare(const std::vector<BlockAccess> &accesses) override
    {
        future = FutureKnowledge::buildRef(accesses);
        prepared = true;
        byNextUse.clear();
        nextOf.clear();
    }

    void
    onAccess(const BlockId &block, Time, std::size_t idx,
             bool hit) override
    {
        PACACHE_ASSERT(prepared, "prepare() required");
        const std::size_t next = future.nextUse(idx);
        if (hit) {
            auto it = nextOf.find(block);
            PACACHE_ASSERT(it != nextOf.end(), "hit on unknown block");
            byNextUse.erase({it->second, block});
            it->second = next;
        } else {
            nextOf[block] = next;
        }
        byNextUse.insert({next, block});
    }

    void
    onRemove(const BlockId &block) override
    {
        auto it = nextOf.find(block);
        PACACHE_ASSERT(it != nextOf.end(), "removal of unknown block");
        byNextUse.erase({it->second, block});
        nextOf.erase(it);
    }

    BlockId
    evict(Time, std::size_t) override
    {
        PACACHE_ASSERT(!byNextUse.empty(), "evict on empty cache");
        // The bug: nearest next use instead of furthest.
        auto it = byNextUse.begin();
        const BlockId victim = it->second;
        nextOf.erase(victim);
        byNextUse.erase(it);
        return victim;
    }

    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }

  private:
    FutureKnowledge future;
    bool prepared = false;
    std::set<std::pair<std::size_t, BlockId>> byNextUse;
    std::unordered_map<BlockId, std::size_t> nextOf;
};

} // namespace pacache::test

#endif // PACACHE_TESTS_SUPPORT_FAULTY_BELADY_HH
