/**
 * @file
 * Per-test temporary directories for tests that write files.
 *
 * gtest's TempDir() is just "/tmp/" on POSIX — shared by every test
 * process — so fixed file names under it collide as soon as ctest
 * runs test binaries in parallel (or the same suite twice). The
 * helpers here scope every path by process id, and the fixture
 * additionally by the running test's full name, so concurrent runs
 * and repeated tests never see each other's files.
 */

#ifndef PACACHE_TESTS_SUPPORT_TEMP_DIR_HH
#define PACACHE_TESTS_SUPPORT_TEMP_DIR_HH

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>

namespace pacache::test
{

/** "/tmp/pacache_<pid>_<name>": unique across processes. */
inline std::string
processScopedPath(const std::string &name)
{
    return ::testing::TempDir() + "pacache_" +
           std::to_string(::getpid()) + "_" + name;
}

/**
 * Fixture owning a fresh directory per test, deleted on teardown.
 * Use path("x") for files inside it.
 */
class TempDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = std::string(info->test_suite_name()) + "_" +
                           info->name();
        for (char &ch : name)
            if (ch == '/' || ch == '.')
                ch = '_';
        dirPath = processScopedPath(name);
        std::filesystem::remove_all(dirPath);
        std::filesystem::create_directories(dirPath);
    }

    void
    TearDown() override
    {
        std::error_code ec; // best-effort cleanup, never fails a test
        std::filesystem::remove_all(dirPath, ec);
    }

    /** Absolute path for @p name inside this test's directory. */
    std::string
    path(const std::string &name) const
    {
        return (std::filesystem::path(dirPath) / name).string();
    }

    const std::string &dir() const { return dirPath; }

  private:
    std::string dirPath;
};

} // namespace pacache::test

#endif // PACACHE_TESTS_SUPPORT_TEMP_DIR_HH
