/**
 * @file
 * Parameterized property sweeps: for every replacement policy and a
 * range of random workloads, the cache and energy-accounting
 * invariants must hold.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

using Param = std::tuple<PolicyKind, uint64_t /*seed*/>;

class PolicyInvariants : public ::testing::TestWithParam<Param>
{
  protected:
    Trace
    makeTrace(uint64_t seed) const
    {
        SyntheticParams p;
        p.numRequests = 1500;
        p.numDisks = 3;
        p.arrival = (seed % 2) ? ArrivalModel::pareto(80.0, 1.5)
                               : ArrivalModel::exponential(80.0);
        p.writeRatio = 0.25;
        p.address.footprintBlocks = 400;
        p.address.reuseProb = 0.5;
        p.seed = seed;
        return generateSynthetic(p);
    }
};

TEST_P(PolicyInvariants, AccountingHoldsEverywhere)
{
    const auto [policy, seed] = GetParam();
    const Trace trace = makeTrace(seed);

    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.cacheBlocks = 128;
    cfg.pa.epochLength = 20.0;
    const ExperimentResult r = runExperiment(trace, cfg);

    // Cache identities.
    EXPECT_EQ(r.cache.accesses, trace.size());
    EXPECT_EQ(r.cache.hits + r.cache.misses, r.cache.accesses);
    EXPECT_LE(r.cache.evictions, r.cache.misses);
    EXPECT_LE(r.cache.coldMisses, r.cache.misses);
    EXPECT_GT(r.cache.coldMisses, 0u);

    // Every access is answered exactly once.
    EXPECT_EQ(r.responses.count(), trace.size());
    EXPECT_GE(r.responses.mean(), 0.0);

    // Energy accounting: non-negative parts, parts sum to total.
    Energy parts = r.energy.serviceEnergy + r.energy.spinUpEnergy +
                   r.energy.spinDownEnergy;
    for (Energy e : r.energy.idleEnergyPerMode) {
        EXPECT_GE(e, 0.0);
        parts += e;
    }
    EXPECT_NEAR(parts, r.energy.total(), 1e-9);
    EXPECT_GT(r.energy.total(), 0.0);

    // Per-disk time accounting covers a common horizon.
    for (std::size_t d = 1; d < r.perDisk.size(); ++d) {
        EXPECT_NEAR(r.perDisk[d].totalTime(), r.perDisk[0].totalTime(),
                    1e-6);
    }

    // Spin-up/down pairing: every spin-up implies at least one
    // demotion happened before it.
    EXPECT_LE(r.energy.spinUps, r.energy.spinDowns);
}

TEST_P(PolicyInvariants, OracleLowerBoundsPractical)
{
    const auto [policy, seed] = GetParam();
    const Trace trace = makeTrace(seed);

    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.cacheBlocks = 128;
    cfg.pa.epochLength = 20.0;

    cfg.dpm = DpmChoice::Oracle;
    const Energy oracle = runExperiment(trace, cfg).totalEnergy;
    cfg.dpm = DpmChoice::Practical;
    const Energy practical = runExperiment(trace, cfg).totalEnergy;
    cfg.dpm = DpmChoice::AlwaysOn;
    const Energy always = runExperiment(trace, cfg).totalEnergy;

    EXPECT_LE(oracle, practical * 1.001);
    EXPECT_LE(oracle, always * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyInvariants,
    ::testing::Combine(
        ::testing::Values(PolicyKind::LRU, PolicyKind::FIFO,
                          PolicyKind::CLOCK, PolicyKind::ARC,
                          PolicyKind::MQ, PolicyKind::LIRS,
                          PolicyKind::Belady, PolicyKind::OPG,
                          PolicyKind::PALRU, PolicyKind::PAARC,
                          PolicyKind::PALIRS),
        ::testing::Values(1u, 2u, 3u)),
    [](const auto &info) {
        std::string n = policyKindName(std::get<0>(info.param));
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n + "_seed" + std::to_string(std::get<1>(info.param));
    });

class WritePolicyInvariants
    : public ::testing::TestWithParam<std::tuple<WritePolicy, uint64_t>>
{
};

TEST_P(WritePolicyInvariants, EveryWritePolicyKeepsTheBooks)
{
    const auto [wp, seed] = GetParam();
    SyntheticParams p;
    p.numRequests = 1200;
    p.numDisks = 3;
    // Sparse arrivals so disks actually reach low-power modes and the
    // deferred-update path (log writes to sleeping disks) is taken.
    p.arrival = ArrivalModel::exponential(8000.0);
    p.writeRatio = 0.5;
    p.address.footprintBlocks = 300;
    p.seed = seed;
    const Trace trace = generateSynthetic(p);

    ExperimentConfig cfg;
    cfg.cacheBlocks = 128;
    cfg.storage.writePolicy = wp;
    cfg.storage.wtduRegionBlocks = 64; // exercise region wraps
    const ExperimentResult r = runExperiment(trace, cfg);

    EXPECT_EQ(r.cache.accesses, trace.size());
    EXPECT_EQ(r.responses.count(), trace.size());
    EXPECT_GT(r.totalEnergy, 0.0);
    if (wp == WritePolicy::WriteThroughDeferredUpdate)
        EXPECT_GT(r.logWrites, 0u);
    else
        EXPECT_EQ(r.logWrites, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WritePolicyInvariants,
    ::testing::Combine(
        ::testing::Values(WritePolicy::WriteThrough,
                          WritePolicy::WriteBack,
                          WritePolicy::WriteBackEagerUpdate,
                          WritePolicy::WriteThroughDeferredUpdate),
        ::testing::Values(11u, 12u)),
    [](const auto &info) {
        return std::string(writePolicyName(std::get<0>(info.param))) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace pacache
