/**
 * @file
 * Parameterized property sweeps: for every replacement policy over
 * qa-generated workloads, the cache and energy-accounting invariants
 * must hold. The invariants themselves live in the qa property
 * registry (energy_accounting_identity, hit_count_monotone); this
 * suite pins every policy dimension explicitly so a failure names the
 * policy, while the fuzz campaign covers the randomized cross
 * product.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"
#include "qa/properties.hh"
#include "qa/trace_gen.hh"

namespace pacache
{
namespace
{

using Param = std::tuple<PolicyKind, uint64_t /*case index*/>;

qa::FuzzCase
caseFor(PolicyKind policy, uint64_t index)
{
    qa::CaseProfile profile;
    profile.minRequests = 800;
    profile.maxRequests = 1500;
    qa::FuzzCase c = qa::makeCase(0x1a17, index, profile);
    c.cfg.policy = policy;
    c.cfg.cacheBlocks = 128;
    return c;
}

class PolicyInvariants : public ::testing::TestWithParam<Param>
{
};

TEST_P(PolicyInvariants, AccountingHoldsEverywhere)
{
    const auto [policy, index] = GetParam();
    const qa::FuzzCase c = caseFor(policy, index);
    const qa::PropertyDef *prop =
        qa::findProperty("energy_accounting_identity");
    ASSERT_NE(prop, nullptr);
    const qa::PropertyResult result = qa::runProperty(*prop, c);
    EXPECT_TRUE(result.passed) << result.message;
}

TEST_P(PolicyInvariants, OracleLowerBoundsPractical)
{
    const auto [policy, index] = GetParam();
    const qa::FuzzCase c = caseFor(policy, index);

    ExperimentConfig cfg;
    cfg.policy = c.cfg.policy;
    cfg.cacheBlocks = c.cfg.cacheBlocks;
    cfg.spec = c.cfg.spec;
    cfg.pa.epochLength = c.cfg.paEpoch;

    cfg.dpm = DpmChoice::Oracle;
    const Energy oracle = runExperiment(c.trace, cfg).totalEnergy;
    cfg.dpm = DpmChoice::Practical;
    const Energy practical = runExperiment(c.trace, cfg).totalEnergy;
    cfg.dpm = DpmChoice::AlwaysOn;
    const Energy always = runExperiment(c.trace, cfg).totalEnergy;

    EXPECT_LE(oracle, practical * 1.001);
    EXPECT_LE(oracle, always * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyInvariants,
    ::testing::Combine(
        ::testing::Values(PolicyKind::LRU, PolicyKind::FIFO,
                          PolicyKind::CLOCK, PolicyKind::ARC,
                          PolicyKind::MQ, PolicyKind::LIRS,
                          PolicyKind::Belady, PolicyKind::OPG,
                          PolicyKind::PALRU, PolicyKind::PAARC,
                          PolicyKind::PALIRS),
        ::testing::Values(1u, 2u, 3u)),
    [](const auto &info) {
        std::string n = policyKindName(std::get<0>(info.param));
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n + "_case" + std::to_string(std::get<1>(info.param));
    });

TEST(CacheInclusion, HitCountsGrowWithCapacity)
{
    const qa::PropertyDef *prop =
        qa::findProperty("hit_count_monotone");
    ASSERT_NE(prop, nullptr);
    for (uint64_t i = 0; i < 4; ++i) {
        const qa::FuzzCase c = qa::makeCase(0x90a0, i);
        const qa::PropertyResult result = qa::runProperty(*prop, c);
        EXPECT_TRUE(result.passed)
            << "case " << i << ": " << result.message;
    }
}

class WritePolicyInvariants
    : public ::testing::TestWithParam<std::tuple<WritePolicy, uint64_t>>
{
};

TEST_P(WritePolicyInvariants, EveryWritePolicyKeepsTheBooks)
{
    const auto [wp, index] = GetParam();
    // Generated case, but with the write policy pinned and the
    // arrival stream stretched: sparse arrivals let disks reach
    // low-power modes so the deferred-update path (log writes to
    // sleeping disks) is actually taken.
    qa::FuzzCase c = qa::makeCase(0x3417e, index);
    c.cfg.writePolicy = wp;
    c.cfg.cacheBlocks = 128;
    c.cfg.wtduRegionBlocks = 64; // exercise region wraps
    Trace stretched;
    Time shift = 0;
    for (std::size_t i = 0; i < c.trace.size(); ++i) {
        TraceRecord rec = c.trace[i];
        rec.time = rec.time * 50 + shift;
        rec.write = i % 2 == 0; // force a steady write stream
        stretched.append(rec);
        shift += 1.0;
    }
    c.trace = std::move(stretched);

    const qa::PropertyDef *prop =
        qa::findProperty("energy_accounting_identity");
    ASSERT_NE(prop, nullptr);
    const qa::PropertyResult result = qa::runProperty(*prop, c);
    EXPECT_TRUE(result.passed) << result.message;

    ExperimentConfig cfg;
    cfg.cacheBlocks = c.cfg.cacheBlocks;
    cfg.spec = c.cfg.spec;
    cfg.storage.writePolicy = wp;
    cfg.storage.wtduRegionBlocks = c.cfg.wtduRegionBlocks;
    const ExperimentResult r = runExperiment(c.trace, cfg);
    EXPECT_EQ(r.cache.accesses, c.trace.size());
    EXPECT_EQ(r.responses.count(), c.trace.size());
    EXPECT_GT(r.totalEnergy, 0.0);
    if (wp == WritePolicy::WriteThroughDeferredUpdate)
        EXPECT_GT(r.logWrites, 0u);
    else
        EXPECT_EQ(r.logWrites, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WritePolicyInvariants,
    ::testing::Combine(
        ::testing::Values(WritePolicy::WriteThrough,
                          WritePolicy::WriteBack,
                          WritePolicy::WriteBackEagerUpdate,
                          WritePolicy::WriteThroughDeferredUpdate),
        ::testing::Values(11u, 12u)),
    [](const auto &info) {
        return std::string(writePolicyName(std::get<0>(info.param))) +
               "_case" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace pacache
