/**
 * @file
 * Fuzz property: OPG's incremental penalty maintenance (gap-scoped
 * repricing on deterministic-miss insert/erase) must always agree
 * with a from-scratch recomputation, across random workloads, both
 * DPM pricings, and a range of theta floors.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.hh"
#include "core/opg.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

using Param = std::tuple<DpmKind, double /*theta*/, uint64_t /*seed*/>;

class OpgConsistency : public ::testing::TestWithParam<Param>
{
};

TEST_P(OpgConsistency, IncrementalMatchesFromScratch)
{
    const auto [kind, theta, seed] = GetParam();

    SyntheticParams sp;
    sp.numRequests = 3000;
    sp.numDisks = 4;
    sp.arrival = (seed % 2) ? ArrivalModel::pareto(150.0, 1.5)
                            : ArrivalModel::exponential(150.0);
    sp.address.footprintBlocks = 250;
    sp.address.reuseProb = 0.6;
    sp.seed = seed;
    const Trace trace = generateSynthetic(sp);
    const auto accesses = expandTrace(trace);

    const PowerModel pm;
    OpgPolicy policy(pm, kind, theta);
    Cache cache(96, policy);
    policy.prepare(accesses);
    policy.validateInternalState(/*full=*/true);

    for (std::size_t i = 0; i < accesses.size(); ++i) {
        cache.access(accesses[i].block, accesses[i].time, i);
        if (i % 250 == 0)
            policy.validateInternalState(/*full=*/true);
    }
    policy.validateInternalState(/*full=*/true);
    EXPECT_GT(cache.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, OpgConsistency,
    ::testing::Combine(::testing::Values(DpmKind::Oracle,
                                         DpmKind::Practical),
                       ::testing::Values(0.0, 29.6),
                       ::testing::Values(51u, 52u, 53u)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) == DpmKind::Oracle
            ? "oracle"
            : "practical";
        n += std::get<1>(info.param) > 0 ? "_theta" : "_pure";
        n += "_seed" + std::to_string(std::get<2>(info.param));
        return n;
    });

} // namespace
} // namespace pacache
