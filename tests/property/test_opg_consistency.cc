/**
 * @file
 * Fuzz property: OPG's incremental penalty maintenance (gap-scoped
 * repricing on deterministic-miss insert/erase) must always agree
 * with a from-scratch recomputation. The check itself is the qa
 * registry's opg_incremental_consistent property; this suite pins the
 * DPM pricing and theta floor explicitly across generated workloads,
 * while the fuzz campaign covers the randomized cross product.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "qa/properties.hh"
#include "qa/trace_gen.hh"

namespace pacache
{
namespace
{

using Param = std::tuple<DpmKind, double /*theta*/, uint64_t /*case*/>;

class OpgConsistency : public ::testing::TestWithParam<Param>
{
};

TEST_P(OpgConsistency, IncrementalMatchesFromScratch)
{
    const auto [kind, theta, index] = GetParam();

    qa::CaseProfile profile;
    profile.minRequests = 1000;
    profile.maxRequests = 2500;
    qa::FuzzCase c = qa::makeCase(0x09c0, index, profile);
    c.cfg.policy = PolicyKind::OPG;
    c.cfg.dpmKind = kind;
    c.cfg.theta = theta;
    c.cfg.cacheBlocks = 96;

    const qa::PropertyDef *prop =
        qa::findProperty("opg_incremental_consistent");
    ASSERT_NE(prop, nullptr);
    const qa::PropertyResult result = qa::runProperty(*prop, c);
    EXPECT_TRUE(result.passed) << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, OpgConsistency,
    ::testing::Combine(::testing::Values(DpmKind::Oracle,
                                         DpmKind::Practical),
                       ::testing::Values(0.0, 29.6),
                       ::testing::Values(51u, 52u, 53u)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) == DpmKind::Oracle
            ? "oracle"
            : "practical";
        n += std::get<1>(info.param) > 0 ? "_theta" : "_pure";
        n += "_case" + std::to_string(std::get<2>(info.param));
        return n;
    });

} // namespace
} // namespace pacache
