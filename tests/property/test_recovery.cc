/**
 * @file
 * WTDU durability property (paper Section 6): after a crash at ANY
 * point, replaying each region's live entries over the data disk's
 * state reconstructs exactly the acknowledged writes.
 *
 * We model disk and log contents as block -> version maps, run a
 * random mix of log appends, flush+retire cycles, and direct writes
 * (all drawn through qa::Gen so the trial shapes are the campaign's),
 * crash at a random step, and verify recovery. Recovery *idempotence*
 * at fuzzed crash points is the qa registry's
 * wtdu_recovery_idempotent property, swept here over generated cases.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/wtdu_log.hh"
#include "qa/gen.hh"
#include "qa/properties.hh"
#include "qa/trace_gen.hh"

namespace pacache
{
namespace
{

class RecoverySweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RecoverySweep, CrashAnywhereRecoversAcknowledgedWrites)
{
    Rng rng(qa::deriveSeed(GetParam(), 0));
    const std::size_t region_blocks = 8;
    const DiskId disk = 0;

    const qa::Gen<uint64_t> stepCount = qa::intIn(1, 60);
    const qa::Gen<uint64_t> blockPick = qa::intIn(0, 15);
    const qa::Gen<bool> isAppend = qa::boolWith(0.7);
    const qa::Gen<bool> isFlush = qa::boolWith(0.5);

    for (int trial = 0; trial < 50; ++trial) {
        WtduLog log(1, region_blocks);
        // "Durable" state of the data disk (block -> version).
        std::unordered_map<BlockNum, uint64_t> disk_state;
        // What the client was told is persistent.
        std::unordered_map<BlockNum, uint64_t> acknowledged;
        // Dirty-in-cache blocks pending flush (block -> version).
        std::unordered_map<BlockNum, uint64_t> pending;

        uint64_t version = 1;
        const uint64_t steps = stepCount(rng);
        const uint64_t crash_at = rng.below(steps);

        for (uint64_t s = 0; s < steps; ++s) {
            if (s == crash_at)
                break; // crash: cache contents are lost

            const BlockNum block = blockPick(rng);
            if (isAppend(rng)) {
                // Deferred write: append to the log, ack the client.
                if (log.full(disk)) {
                    // Flush: everything pending reaches the disk,
                    // then the region retires.
                    for (const auto &[b, v] : pending)
                        disk_state[b] = std::max(disk_state[b], v);
                    pending.clear();
                    log.retire(disk);
                }
                const uint64_t v = version++;
                ASSERT_TRUE(log.append(disk, block, v));
                pending[block] = v;
                acknowledged[block] = v;
            } else if (isFlush(rng)) {
                // Disk activation: flush pending, retire the region.
                for (const auto &[b, v] : pending)
                    disk_state[b] = std::max(disk_state[b], v);
                pending.clear();
                log.retire(disk);
            }
            // (Other steps: reads; irrelevant to durability.)
        }

        // --- crash ---
        // Recovery: replay live log entries in append order.
        for (const auto &e : log.recover(disk))
            disk_state[e.block] = std::max(disk_state[e.block],
                                           e.version);

        // Every acknowledged write must be durable at its version or
        // newer; nothing newer than acknowledged may exist.
        for (const auto &[b, v] : acknowledged) {
            auto it = disk_state.find(b);
            ASSERT_NE(it, disk_state.end())
                << "acknowledged block " << b << " lost";
            EXPECT_EQ(it->second, v)
                << "block " << b << " recovered at wrong version";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySweep,
                         ::testing::Values(101u, 202u, 303u, 404u,
                                           505u));

TEST(RecoverySweepRegistry, IdempotentAtFuzzedCrashPoints)
{
    const qa::PropertyDef *prop =
        qa::findProperty("wtdu_recovery_idempotent");
    ASSERT_NE(prop, nullptr);
    for (uint64_t i = 0; i < 6; ++i) {
        qa::FuzzCase c = qa::makeCase(0x4ec0, i);
        c.cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
        const qa::PropertyResult result = qa::runProperty(*prop, c);
        EXPECT_TRUE(result.passed)
            << "case " << i << ": " << result.message;
    }
}

TEST(Recovery, ReplayIsIdempotent)
{
    WtduLog log(1, 4);
    log.append(0, 5, 1);
    log.append(0, 6, 2);
    std::unordered_map<BlockNum, uint64_t> disk_state;
    for (int round = 0; round < 3; ++round) {
        for (const auto &e : log.recover(0))
            disk_state[e.block] = std::max(disk_state[e.block],
                                           e.version);
    }
    EXPECT_EQ(disk_state.size(), 2u);
    EXPECT_EQ(disk_state[5], 1u);
    EXPECT_EQ(disk_state[6], 2u);
}

TEST(Recovery, StaleGenerationsNeverResurrect)
{
    WtduLog log(1, 4);
    log.append(0, 5, 1);
    // Flush happened: version 1 reached the disk; region retired.
    std::unordered_map<BlockNum, uint64_t> disk_state{{5, 1}};
    log.retire(0);
    // New generation writes version 2 but crashes pre-flush.
    log.append(0, 5, 2);
    for (const auto &e : log.recover(0))
        disk_state[e.block] = std::max(disk_state[e.block], e.version);
    EXPECT_EQ(disk_state[5], 2u);
}

} // namespace
} // namespace pacache
