/**
 * @file
 * Property sweep over the DPM mathematics (paper Section 2.2):
 * for any idle-interval length t,
 *   - the lower envelope E*(t) bounds every line from below,
 *   - the threshold-based Practical DPM never beats the Oracle,
 *   - Practical is 2-competitive: E_practical(t) <= 2 * E*(t)
 *     (Irani et al.), given intersection-point thresholds.
 *
 * Fixed interval lengths run against the paper's default model below;
 * randomized models come from qa::genDiskSpec (the fuzz campaign's
 * generator), and the full randomized sweep is the registry's
 * dpm_two_competitive / energy_tables_match_legacy properties.
 */

#include <gtest/gtest.h>

#include "disk/power_model.hh"
#include "qa/properties.hh"
#include "qa/trace_gen.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

class EnvelopeSweep : public ::testing::TestWithParam<double>
{
  protected:
    const PowerModel pm;
};

TEST_P(EnvelopeSweep, EnvelopeIsLowerBound)
{
    const double t = GetParam();
    for (std::size_t i = 0; i < pm.numModes(); ++i)
        EXPECT_LE(pm.envelope(t), pm.energyLine(i, t) + 1e-9);
}

TEST_P(EnvelopeSweep, OracleLowerBoundsPractical)
{
    const double t = GetParam();
    EXPECT_LE(pm.envelope(t), pm.practicalEnergy(t) + 1e-9);
}

TEST_P(EnvelopeSweep, PracticalIsTwoCompetitive)
{
    const double t = GetParam();
    EXPECT_LE(pm.practicalEnergy(t), 2.0 * pm.envelope(t) + 1e-9);
}

TEST_P(EnvelopeSweep, SavingsMatchesEnvelopeGap)
{
    const double t = GetParam();
    EXPECT_NEAR(pm.maxSavings(t),
                pm.energyLine(0, t) - pm.envelope(t), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    IntervalLengths, EnvelopeSweep,
    ::testing::Values(0.0, 0.5, 2.0, 5.0, 10.68, 13.7, 19.2, 25.0,
                      32.0, 50.0, 96.1, 150.0, 500.0, 5000.0),
    [](const auto &info) {
        std::string n = std::to_string(info.param);
        for (auto &ch : n)
            if (ch == '.')
                ch = '_';
        return "t" + n;
    });

TEST(DpmCompetitiveRandom, HoldsOnGeneratedModelsAndIntervals)
{
    Rng rng(99);
    const qa::Gen<DiskSpec> gen = qa::genDiskSpec();
    for (int m = 0; m < 20; ++m) {
        const PowerModel pm(gen(rng));
        for (int i = 0; i < 200; ++i) {
            const double t = rng.pareto(1.2, 0.1);
            ASSERT_LE(pm.envelope(t), pm.practicalEnergy(t) + 1e-9)
                << "model " << m << " t=" << t;
            ASSERT_LE(pm.practicalEnergy(t),
                      2.0 * pm.envelope(t) + 1e-9)
                << "model " << m << " t=" << t;
        }
    }
}

TEST(DpmCompetitiveRandom, ThresholdsAlwaysAscend)
{
    Rng rng(7);
    const qa::Gen<DiskSpec> gen = qa::genDiskSpec();
    for (int m = 0; m < 50; ++m) {
        const PowerModel pm(gen(rng));
        const auto &thr = pm.thresholds();
        for (std::size_t i = 1; i < thr.size(); ++i)
            ASSERT_GT(thr[i], thr[i - 1]);
    }
}

TEST(DpmCompetitiveRandom, RegistryPropertiesHoldOnGeneratedCases)
{
    const qa::PropertyDef *competitive =
        qa::findProperty("dpm_two_competitive");
    const qa::PropertyDef *tables =
        qa::findProperty("energy_tables_match_legacy");
    ASSERT_NE(competitive, nullptr);
    ASSERT_NE(tables, nullptr);
    for (uint64_t i = 0; i < 8; ++i) {
        const qa::FuzzCase c = qa::makeCase(0xd900, i);
        qa::PropertyResult result = qa::runProperty(*competitive, c);
        EXPECT_TRUE(result.passed)
            << "case " << i << ": " << result.message;
        result = qa::runProperty(*tables, c);
        EXPECT_TRUE(result.passed)
            << "case " << i << ": " << result.message;
    }
}

} // namespace
} // namespace pacache
