#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/clock.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n)
{
    return BlockId{0, n};
}

TEST(ClockPolicyTest, SecondChanceProtectsReferenced)
{
    ClockPolicy p;
    Cache c(3, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    c.access(b(2), 0, idx++);
    c.access(b(3), 0, idx++);
    c.access(b(1), 0, idx++); // sets 1's reference bit
    const auto r = c.access(b(4), 0, idx++);
    // 1 gets a second chance; some non-referenced block is evicted.
    EXPECT_NE(r.victim, b(1));
    EXPECT_TRUE(c.contains(b(1)));
}

TEST(ClockPolicyTest, UnreferencedEvictedEventually)
{
    ClockPolicy p;
    Cache c(2, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    c.access(b(2), 0, idx++);
    c.access(b(3), 0, idx++); // evicts one of 1/2
    c.access(b(4), 0, idx++); // evicts the other
    EXPECT_FALSE(c.contains(b(1)));
    EXPECT_FALSE(c.contains(b(2)));
}

TEST(ClockPolicyTest, AllReferencedDegradesToSweep)
{
    ClockPolicy p;
    Cache c(3, p);
    std::size_t idx = 0;
    for (BlockNum n = 1; n <= 3; ++n)
        c.access(b(n), 0, idx++);
    for (BlockNum n = 1; n <= 3; ++n)
        c.access(b(n), 0, idx++); // everything referenced
    const auto r = c.access(b(4), 0, idx++);
    // The hand clears bits and evicts some block; the cache keeps
    // working and stays at capacity.
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(c.size(), 3u);
}

TEST(ClockPolicyTest, SurvivesManyRemovals)
{
    ClockPolicy p;
    Cache c(4, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 4; ++n)
        c.access(b(n), 0, idx++);
    p.onRemove(b(2));
    p.onRemove(b(0));
    // The ring still evicts the remaining blocks without tripping.
    const BlockId v1 = p.evict(0, 0);
    const BlockId v2 = p.evict(0, 0);
    EXPECT_NE(v1, v2);
    EXPECT_TRUE(v1 == b(1) || v1 == b(3));
    EXPECT_TRUE(v2 == b(1) || v2 == b(3));
}

TEST(ClockPolicyTest, EvictEmptyPanics)
{
    ClockPolicy p;
    EXPECT_ANY_THROW(p.evict(0, 0));
}

TEST(ClockPolicyTest, HitRatioBetweenFifoAndAlwaysMiss)
{
    // On a mixed workload CLOCK should at least beat never-hitting.
    ClockPolicy p;
    Cache c(8, p);
    std::size_t idx = 0;
    for (int round = 0; round < 50; ++round) {
        c.access(b(round % 4), 0, idx++);       // hot set fits
        c.access(b(100 + round), 0, idx++);     // cold stream
    }
    EXPECT_GT(c.stats().hits, 25u);
}

} // namespace
} // namespace pacache
