#include <gtest/gtest.h>

#include "cache/arc.hh"
#include "cache/cache.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n)
{
    return BlockId{0, n};
}

TEST(ArcPolicyTest, BasicResidencyRespected)
{
    ArcPolicy p(2);
    Cache c(2, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    c.access(b(2), 0, idx++);
    const auto r = c.access(b(3), 0, idx++);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(c.size(), 2u);
}

TEST(ArcPolicyTest, HitPromotesToT2)
{
    ArcPolicy p(4);
    Cache c(4, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    EXPECT_EQ(p.t1Size(), 1u);
    EXPECT_EQ(p.t2Size(), 0u);
    c.access(b(1), 0, idx++);
    EXPECT_EQ(p.t1Size(), 0u);
    EXPECT_EQ(p.t2Size(), 1u);
}

TEST(ArcPolicyTest, GhostHitAdaptsTarget)
{
    ArcPolicy p(2);
    Cache c(2, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    c.access(b(2), 0, idx++);
    c.access(b(2), 0, idx++); // hit: 2 moves to T2, T1={1}
    c.access(b(3), 0, idx++); // evicts 1 into B1 (ghost survives:
                              // |T1|+|B1| = 2 = c)
    const double before = p.targetT1();
    c.access(b(1), 0, idx++); // B1 ghost hit: p grows
    EXPECT_GT(p.targetT1(), before);
    // Ghost-hit re-fetch goes to T2.
    EXPECT_GE(p.t2Size(), 1u);
}

TEST(ArcPolicyTest, ScanResistanceBeatsLru)
{
    // Hot set of 8 blocks re-referenced constantly, plus a one-shot
    // scan; ARC should keep more of the hot set than plain LRU.
    const std::size_t cap = 16;
    auto run_hits = [&](auto make_policy) {
        auto policy = make_policy();
        Cache c(cap, *policy);
        std::size_t idx = 0;
        uint64_t hot_hits = 0;
        Rng rng(3);
        for (int round = 0; round < 3000; ++round) {
            const BlockNum hot = rng.below(8);
            hot_hits += c.access(b(hot), 0, idx++).hit;
            // interleaved scan block, never reused
            c.access(b(100000 + round), 0, idx++);
        }
        return hot_hits;
    };
    const uint64_t arc_hits = run_hits(
        [&] { return std::make_unique<ArcPolicy>(cap); });
    const uint64_t lru_hits = run_hits(
        [&] { return std::make_unique<LruPolicy>(); });
    EXPECT_GT(arc_hits, lru_hits);
}

TEST(ArcPolicyTest, RemoveLeavesConsistentState)
{
    ArcPolicy p(4);
    Cache c(4, p);
    std::size_t idx = 0;
    for (BlockNum n = 1; n <= 4; ++n)
        c.access(b(n), 0, idx++);
    c.access(b(2), 0, idx++); // promote 2 to T2
    p.onRemove(b(2));
    p.onRemove(b(1));
    // Evictions still produce distinct remaining blocks.
    const BlockId v1 = p.evict(0, 0);
    const BlockId v2 = p.evict(0, 0);
    EXPECT_NE(v1, v2);
}

TEST(ArcPolicyTest, RemoveUnknownPanics)
{
    ArcPolicy p(2);
    EXPECT_ANY_THROW(p.onRemove(b(5)));
}

TEST(ArcPolicyTest, LongRandomRunStaysConsistent)
{
    const std::size_t cap = 32;
    ArcPolicy p(cap);
    Cache c(cap, p);
    Rng rng(11);
    std::size_t idx = 0;
    for (int i = 0; i < 20000; ++i) {
        c.access(b(rng.below(200)), 0, idx++);
        ASSERT_LE(c.size(), cap);
        ASSERT_EQ(p.t1Size() + p.t2Size(), c.size());
    }
    EXPECT_GT(c.stats().hits, 0u);
}

} // namespace
} // namespace pacache
