#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/fifo.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n)
{
    return BlockId{0, n};
}

TEST(FifoPolicyTest, EvictsOldestInsertion)
{
    FifoPolicy p;
    Cache c(2, p);
    c.access(b(1), 0, 0);
    c.access(b(2), 1, 1);
    c.access(b(1), 2, 2); // hit: FIFO order unchanged
    const auto r = c.access(b(3), 3, 3);
    EXPECT_EQ(r.victim, b(1));
}

TEST(FifoPolicyTest, HitsDontExtendLifetime)
{
    FifoPolicy p;
    Cache c(3, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    c.access(b(2), 0, idx++);
    c.access(b(3), 0, idx++);
    for (int i = 0; i < 10; ++i)
        c.access(b(1), 0, idx++); // many hits on 1
    const auto r = c.access(b(4), 0, idx++);
    EXPECT_EQ(r.victim, b(1)); // still evicted first
}

TEST(FifoPolicyTest, RemoveMaintainsOrder)
{
    FifoPolicy p;
    Cache c(3, p);
    c.access(b(1), 0, 0);
    c.access(b(2), 0, 1);
    c.access(b(3), 0, 2);
    p.onRemove(b(1));
    // Cache is unaware of the external removal; verify policy order
    // directly via evict.
    EXPECT_EQ(p.evict(0, 0), b(2));
    EXPECT_EQ(p.evict(0, 0), b(3));
}

TEST(FifoPolicyTest, EvictEmptyPanics)
{
    FifoPolicy p;
    EXPECT_ANY_THROW(p.evict(0, 0));
}

TEST(FifoPolicyTest, RemoveUnknownPanics)
{
    FifoPolicy p;
    EXPECT_ANY_THROW(p.onRemove(b(9)));
}

} // namespace
} // namespace pacache
