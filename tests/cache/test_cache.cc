#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/lru.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n, DiskId d = 0)
{
    return BlockId{d, n};
}

struct CacheFixture : ::testing::Test
{
    LruPolicy policy;
    Cache cache{3, policy};
    std::size_t idx = 0;

    CacheResult
    access(BlockNum n, DiskId d = 0)
    {
        const Time now = static_cast<Time>(idx);
        return cache.access(b(n, d), now, idx++);
    }
};

TEST_F(CacheFixture, MissThenHit)
{
    EXPECT_FALSE(access(1).hit);
    EXPECT_TRUE(access(1).hit);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().accesses, 2u);
}

TEST_F(CacheFixture, CapacityEnforced)
{
    access(1);
    access(2);
    access(3);
    EXPECT_EQ(cache.size(), 3u);
    const auto r = access(4);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(r.victim, b(1)); // LRU victim
    EXPECT_FALSE(cache.contains(b(1)));
}

TEST_F(CacheFixture, NoEvictionBelowCapacity)
{
    EXPECT_FALSE(access(1).evicted);
    EXPECT_FALSE(access(2).evicted);
    EXPECT_FALSE(access(3).evicted);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST_F(CacheFixture, DirtyFlagLifecycle)
{
    access(1);
    EXPECT_FALSE(cache.isDirty(b(1)));
    cache.markDirty(b(1));
    EXPECT_TRUE(cache.isDirty(b(1)));
    EXPECT_EQ(cache.dirtyCount(0), 1u);
    cache.markClean(b(1));
    EXPECT_FALSE(cache.isDirty(b(1)));
    EXPECT_EQ(cache.dirtyCount(0), 0u);
}

TEST_F(CacheFixture, VictimDirtyReported)
{
    access(1);
    cache.markDirty(b(1));
    access(2);
    access(3);
    const auto r = access(4);
    EXPECT_TRUE(r.evicted);
    EXPECT_TRUE(r.victimDirty);
    EXPECT_EQ(cache.dirtyCount(0), 0u); // flag dropped with the block
}

TEST_F(CacheFixture, LoggedFlagLifecycle)
{
    access(5);
    cache.markLogged(b(5));
    EXPECT_TRUE(cache.isLogged(b(5)));
    EXPECT_EQ(cache.loggedBlocksOf(0).size(), 1u);
    cache.clearLogged(b(5));
    EXPECT_FALSE(cache.isLogged(b(5)));
}

TEST_F(CacheFixture, VictimLoggedReported)
{
    access(1);
    cache.markLogged(b(1));
    access(2);
    access(3);
    const auto r = access(4);
    EXPECT_TRUE(r.evicted);
    EXPECT_TRUE(r.victimLogged);
    EXPECT_TRUE(cache.loggedBlocksOf(0).empty());
}

TEST_F(CacheFixture, DirtySetsArePerDisk)
{
    access(1, 0);
    access(1, 1);
    cache.markDirty(b(1, 0));
    cache.markDirty(b(1, 1));
    EXPECT_EQ(cache.dirtyCount(0), 1u);
    EXPECT_EQ(cache.dirtyCount(1), 1u);
    EXPECT_EQ(cache.dirtyBlocksOf(0)[0].disk, 0u);
    EXPECT_EQ(cache.dirtyBlocksOf(1)[0].disk, 1u);
}

TEST_F(CacheFixture, ColdMissCountIsExact)
{
    access(1);
    access(2);
    access(1); // hit
    access(4);
    access(1); // block 1 still resident
    access(2); // block 2 still resident
    EXPECT_EQ(cache.stats().coldMisses, 3u); // 1, 2, 4
}

TEST_F(CacheFixture, ReaccessAfterEvictionIsWarmMiss)
{
    access(1);
    access(2);
    access(3);
    access(4); // evicts 1
    const auto r = access(1);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(cache.stats().coldMisses, 4u); // the re-access is warm
}

TEST_F(CacheFixture, PrefetchHiddenFirstAccessStillCountsCold)
{
    // coldMisses counts first-ever demand accesses: a block whose
    // first access hits because insert() prefetched it beforehand
    // still counts, exactly once.
    cache.insert(b(7), 0, idx);
    EXPECT_EQ(cache.stats().coldMisses, 0u); // a prefetch is no access
    EXPECT_TRUE(access(7).hit);
    EXPECT_EQ(cache.stats().coldMisses, 1u);
    access(7);
    EXPECT_EQ(cache.stats().coldMisses, 1u);
    access(1);
    EXPECT_EQ(cache.stats().coldMisses, 2u);
}

TEST_F(CacheFixture, PackedKeyOverflowPanics)
{
    // Block numbers at or above 2^48 would alias another block in the
    // packed-key residency map; they must fail loudly instead.
    EXPECT_ANY_THROW(access(BlockNum{1} << 48));
}

TEST_F(CacheFixture, MarkDirtyOnNonResidentPanics)
{
    EXPECT_ANY_THROW(cache.markDirty(b(99)));
}

TEST(CacheBasics, ZeroCapacityRejected)
{
    LruPolicy p;
    EXPECT_ANY_THROW(Cache(0, p));
}

TEST(CacheBasics, HitRatioComputation)
{
    LruPolicy p;
    Cache c(2, p);
    c.access(b(1), 0, 0);
    c.access(b(1), 1, 1);
    c.access(b(1), 2, 2);
    c.access(b(2), 3, 3);
    EXPECT_DOUBLE_EQ(c.stats().hitRatio(), 0.5);
}

} // namespace
} // namespace pacache
