/**
 * @file
 * WindowedFuture must reproduce FutureKnowledge exactly: the
 * backward chunked pass over the .pct file, stitched across chunk
 * boundaries by the carry map, yields the *global* next-use chain for
 * every window and chunk size — including window 1 and a chunk
 * smaller than one multi-block request.
 */

#include <gtest/gtest.h>

#include "cache/future.hh"
#include "cache/future_window.hh"
#include "trace/synthetic.hh"
#include "trace/trace.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/trace_source.hh"

#include "../tracefmt/temp_file.hh"

namespace pacache
{
namespace
{

Trace
workload(uint64_t seed = 5)
{
    SyntheticParams p;
    p.numRequests = 1200;
    p.numDisks = 5;
    p.arrival = ArrivalModel::exponential(40.0);
    p.address.footprintBlocks = 150; // dense reuse: long next-use chains
    p.seed = seed;
    return generateSynthetic(p);
}

/** A few multi-block requests, so expansion crosses chunk bounds. */
Trace
multiBlockWorkload()
{
    Trace t;
    const uint32_t lens[] = {1, 3, 7, 2, 5, 1, 4, 8, 2, 6};
    Time now = 0;
    for (int i = 0; i < 60; ++i) {
        TraceRecord rec;
        rec.time = now;
        rec.disk = static_cast<DiskId>(i % 3);
        rec.block = static_cast<BlockNum>((i * 11) % 40);
        rec.numBlocks = lens[i % 10];
        rec.write = (i % 4) == 0;
        t.append(rec);
        now += 0.25;
    }
    return t;
}

std::string
writeTracePct(const Trace &t, const std::string &name)
{
    const std::string path = test::tempPath(name);
    tracefmt::MemorySource src(t);
    tracefmt::writePct(path, src);
    return path;
}

/**
 * Drive @p fut through the whole access stream in consumption order
 * and compare every next-use index (and, when pinned, every pinned
 * time) against the materialized reference.
 */
void
expectMatchesReference(const Trace &t, WindowedFuture &fut,
                       bool pinned)
{
    const std::vector<BlockAccess> accesses = expandTrace(t);
    const FutureKnowledge ref = FutureKnowledge::build(accesses);
    ASSERT_TRUE(fut.built());
    ASSERT_EQ(fut.size(), ref.size());
    EXPECT_EQ(fut.numDisks(), t.numDisks());
    EXPECT_EQ(fut.endTime(), t.endTime());

    // Cold seeds are exactly the first-reference accesses, ascending.
    std::size_t seed_at = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (!ref.isFirstReference(i))
            continue;
        ASSERT_LT(seed_at, fut.coldSeeds().size());
        EXPECT_EQ(fut.coldSeeds()[seed_at].idx, i);
        EXPECT_EQ(fut.coldSeeds()[seed_at].disk,
                  accesses[i].block.disk);
        ++seed_at;
    }
    EXPECT_EQ(seed_at, fut.coldSeeds().size());

    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (pinned && ref.isFirstReference(i))
            EXPECT_EQ(fut.timeOf(i), ref.timeOf(i)) << "cold " << i;
        const std::size_t next = fut.nextUse(i);
        EXPECT_EQ(next, ref.nextUse(i)) << "idx " << i;
        if (pinned && next != WindowedFuture::kNever)
            EXPECT_EQ(fut.timeOf(next), ref.timeOf(next))
                << "successor of " << i;
    }
}

TEST(WindowedFuture, ExactForEveryWindowAndChunkSize)
{
    const Trace t = workload();
    const std::string pct = writeTracePct(t, "winfut_sizes.pct");
    const std::size_t chunk = 64;
    // The satellite matrix: 1, chunk-1, chunk, chunk+1, "infinite".
    const std::size_t windows[] = {1, chunk - 1, chunk, chunk + 1,
                                   std::size_t(1) << 20};
    for (const std::size_t w : windows) {
        WindowedFuture::Options opts;
        opts.windowEntries = w;
        opts.chunkAccesses = chunk;
        WindowedFuture fut(pct, opts);
        SCOPED_TRACE("window " + std::to_string(w));
        expectMatchesReference(t, fut, /*pinned=*/true);
    }
}

TEST(WindowedFuture, ChunkBoundariesInsideMultiBlockRequests)
{
    const Trace t = multiBlockWorkload();
    const std::string pct = writeTracePct(t, "winfut_multiblock.pct");
    // Chunks smaller than the largest request force the backward
    // pass to split a single record's expansion across chunks.
    for (const std::size_t chunk : {std::size_t(1), std::size_t(7),
                                    std::size_t(16)}) {
        WindowedFuture::Options opts;
        opts.windowEntries = 4;
        opts.chunkAccesses = chunk;
        WindowedFuture fut(pct, opts);
        SCOPED_TRACE("chunk " + std::to_string(chunk));
        expectMatchesReference(t, fut, /*pinned=*/true);
    }
}

TEST(WindowedFuture, BeladyModeSkipsPinning)
{
    const Trace t = workload(9);
    const std::string pct = writeTracePct(t, "winfut_nopin.pct");
    WindowedFuture::Options opts;
    opts.windowEntries = 32;
    opts.chunkAccesses = 100;
    opts.pinTimes = false;
    WindowedFuture fut(pct, opts);
    expectMatchesReference(t, fut, /*pinned=*/false);
}

TEST(WindowedFuture, MoveTransfersTheStream)
{
    const Trace t = workload(13);
    const std::string pct = writeTracePct(t, "winfut_move.pct");
    WindowedFuture::Options opts;
    opts.windowEntries = 16;
    opts.chunkAccesses = 50;
    WindowedFuture a(pct, opts);
    const std::vector<BlockAccess> accesses = expandTrace(t);
    const FutureKnowledge ref = FutureKnowledge::build(accesses);

    // Consume a prefix, move, and continue on the target.
    const std::size_t half = ref.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        ASSERT_EQ(a.nextUse(i), ref.nextUse(i));
    WindowedFuture b(std::move(a));
    for (std::size_t i = half; i < ref.size(); ++i)
        ASSERT_EQ(b.nextUse(i), ref.nextUse(i));
}

} // namespace
} // namespace pacache
