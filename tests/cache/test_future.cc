#include <gtest/gtest.h>

#include "cache/future.hh"

namespace pacache
{
namespace
{

std::vector<BlockAccess>
stream(std::initializer_list<BlockNum> blocks)
{
    std::vector<BlockAccess> out;
    Time t = 0;
    for (BlockNum b : blocks) {
        out.push_back(BlockAccess{t, BlockId{0, b}, false, out.size()});
        t += 1.0;
    }
    return out;
}

TEST(ExpandTrace, SplitsMultiBlockRequests)
{
    Trace t;
    t.append({0.0, 2, 100, 3, true});
    t.append({1.0, 0, 7, 1, false});
    const auto accs = expandTrace(t);
    ASSERT_EQ(accs.size(), 4u);
    EXPECT_EQ(accs[0].block, (BlockId{2, 100}));
    EXPECT_EQ(accs[1].block, (BlockId{2, 101}));
    EXPECT_EQ(accs[2].block, (BlockId{2, 102}));
    EXPECT_TRUE(accs[0].write);
    EXPECT_EQ(accs[0].traceIndex, 0u);
    EXPECT_EQ(accs[3].traceIndex, 1u);
    EXPECT_FALSE(accs[3].write);
}

TEST(FutureKnowledgeTest, NextUseChains)
{
    // A B A C B A
    const auto accs = stream({1, 2, 1, 3, 2, 1});
    const auto fk = FutureKnowledge::build(accs);
    EXPECT_EQ(fk.nextUse(0), 2u);
    EXPECT_EQ(fk.nextUse(1), 4u);
    EXPECT_EQ(fk.nextUse(2), 5u);
    EXPECT_EQ(fk.nextUse(3), FutureKnowledge::kNever);
    EXPECT_EQ(fk.nextUse(4), FutureKnowledge::kNever);
    EXPECT_EQ(fk.nextUse(5), FutureKnowledge::kNever);
}

TEST(FutureKnowledgeTest, FirstReferences)
{
    const auto accs = stream({1, 2, 1, 3, 2, 1});
    const auto fk = FutureKnowledge::build(accs);
    EXPECT_TRUE(fk.isFirstReference(0));
    EXPECT_TRUE(fk.isFirstReference(1));
    EXPECT_FALSE(fk.isFirstReference(2));
    EXPECT_TRUE(fk.isFirstReference(3));
    EXPECT_FALSE(fk.isFirstReference(4));
    EXPECT_FALSE(fk.isFirstReference(5));
}

TEST(FutureKnowledgeTest, DisksAreDistinct)
{
    std::vector<BlockAccess> accs;
    accs.push_back({0.0, BlockId{0, 5}, false, 0});
    accs.push_back({1.0, BlockId{1, 5}, false, 1}); // same block, other disk
    accs.push_back({2.0, BlockId{0, 5}, false, 2});
    const auto fk = FutureKnowledge::build(accs);
    EXPECT_EQ(fk.nextUse(0), 2u);
    EXPECT_EQ(fk.nextUse(1), FutureKnowledge::kNever);
    EXPECT_TRUE(fk.isFirstReference(1));
}

TEST(FutureKnowledgeTest, EmptyStream)
{
    const auto fk = FutureKnowledge::build({});
    EXPECT_EQ(fk.size(), 0u);
}

} // namespace
} // namespace pacache
