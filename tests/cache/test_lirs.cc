#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/lirs.hh"
#include "cache/lru.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n)
{
    return BlockId{0, n};
}

TEST(LirsPolicyTest, WarmupFillsLirSetFirst)
{
    LirsPolicy p(10, 0.2); // 8 LIR + 2 HIR
    Cache c(10, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 8; ++n)
        c.access(b(n), 0, idx++);
    EXPECT_EQ(p.lirCount(), 8u);
    EXPECT_EQ(p.hirResidentCount(), 0u);
    c.access(b(100), 0, idx++);
    EXPECT_EQ(p.lirCount(), 8u);
    EXPECT_EQ(p.hirResidentCount(), 1u);
    p.validate();
}

TEST(LirsPolicyTest, EvictsResidentHirNotLir)
{
    LirsPolicy p(4, 0.25); // 3 LIR + 1 HIR
    Cache c(4, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 3; ++n)
        c.access(b(n), 0, idx++); // LIR set {0,1,2}
    c.access(b(10), 0, idx++);    // HIR resident
    const auto r = c.access(b(11), 0, idx++);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, b(10)); // the HIR block, not any LIR block
    for (BlockNum n = 0; n < 3; ++n)
        EXPECT_TRUE(c.contains(b(n)));
    p.validate();
}

TEST(LirsPolicyTest, GhostHitPromotesToLir)
{
    LirsPolicy p(4, 0.25);
    Cache c(4, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 3; ++n)
        c.access(b(n), 0, idx++);
    c.access(b(10), 0, idx++); // HIR
    c.access(b(11), 0, idx++); // evicts 10 -> ghost in S
    const std::size_t lir_before = p.lirCount();
    c.access(b(10), 0, idx++); // ghost hit: 10 promoted to LIR
    EXPECT_EQ(p.lirCount(), lir_before); // promote + demote balance
    EXPECT_TRUE(c.contains(b(10)));
    p.validate();
}

TEST(LirsPolicyTest, ScanResistanceBeatsLru)
{
    // Hot set re-referenced between one-shot scan blocks: LIRS keeps
    // the hot set LIR while the scan churns the tiny HIR partition.
    const std::size_t cap = 16;
    auto hits = [&](auto &policy) {
        Cache c(cap, policy);
        std::size_t idx = 0;
        Rng rng(5);
        uint64_t hot_hits = 0;
        // Warm the hot set.
        for (BlockNum n = 0; n < 10; ++n)
            c.access(b(n), 0, idx++);
        for (int round = 0; round < 3000; ++round) {
            hot_hits += c.access(b(rng.below(10)), 0, idx++).hit;
            c.access(b(10000 + round), 0, idx++); // scan
        }
        return hot_hits;
    };
    LirsPolicy lirs(cap, 0.2);
    LruPolicy lru;
    EXPECT_GT(hits(lirs), hits(lru));
    lirs.validate();
}

TEST(LirsPolicyTest, HirResidentHitOutsideStackStaysHir)
{
    LirsPolicy p(4, 0.25, /*ghost_factor=*/1.25); // tiny history
    Cache c(4, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 3; ++n)
        c.access(b(n), 0, idx++);
    c.access(b(10), 0, idx++); // HIR resident
    // Flood the stack history so 10's entry is pruned/trimmed away,
    // then hit it: it must stay HIR (large recency).
    for (BlockNum n = 0; n < 3; ++n)
        for (int k = 0; k < 3; ++k)
            c.access(b(n), 0, idx++);
    c.access(b(10), 0, idx++);
    EXPECT_EQ(p.hirResidentCount(), 1u);
    p.validate();
}

TEST(LirsPolicyTest, RemoveKeepsStructuresConsistent)
{
    LirsPolicy p(6, 0.34);
    Cache c(6, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 6; ++n)
        c.access(b(n), 0, idx++);
    p.onRemove(b(0)); // a LIR block
    p.validate();
    p.onRemove(b(5)); // likely HIR
    p.validate();
    // Policy can still evict the remaining blocks.
    const BlockId v = p.evict(0, 0);
    EXPECT_NE(v, b(0));
    EXPECT_NE(v, b(5));
    p.validate();
}

TEST(LirsPolicyTest, RemoveUnknownPanics)
{
    LirsPolicy p(4);
    EXPECT_ANY_THROW(p.onRemove(b(1)));
}

TEST(LirsPolicyTest, LongRandomRunStaysConsistent)
{
    const std::size_t cap = 64;
    LirsPolicy p(cap, 0.1);
    Cache c(cap, p);
    Rng rng(17);
    ZipfSampler zipf(600, 0.9);
    std::size_t idx = 0;
    for (int i = 0; i < 30000; ++i) {
        c.access(b(zipf.sample(rng)), 0, idx++);
        ASSERT_LE(c.size(), cap);
        if (i % 1000 == 0)
            p.validate();
    }
    p.validate();
    EXPECT_GT(c.stats().hitRatio(), 0.3);
}

TEST(LirsPolicyTest, GhostHistoryIsBounded)
{
    const std::size_t cap = 8;
    LirsPolicy p(cap, 0.25, 2.0);
    Cache c(cap, p);
    std::size_t idx = 0;
    // Endless one-shot stream creates a ghost per eviction; history
    // must stay bounded (validated internally via the stack bound).
    for (BlockNum n = 0; n < 5000; ++n)
        c.access(b(n), 0, idx++);
    p.validate();
}

} // namespace
} // namespace pacache
