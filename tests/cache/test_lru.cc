#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/lru.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n)
{
    return BlockId{0, n};
}

TEST(LruStackTest, TouchMovesToMru)
{
    LruStack s;
    s.touch(b(1));
    s.touch(b(2));
    s.touch(b(1)); // 1 is MRU again
    EXPECT_EQ(s.popLru(), b(2));
    EXPECT_EQ(s.popLru(), b(1));
    EXPECT_TRUE(s.empty());
}

TEST(LruStackTest, RemoveSpecific)
{
    LruStack s;
    s.touch(b(1));
    s.touch(b(2));
    s.touch(b(3));
    EXPECT_TRUE(s.remove(b(2)));
    EXPECT_FALSE(s.remove(b(2)));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.popLru(), b(1));
}

TEST(LruStackTest, ContainsTracksMembership)
{
    LruStack s;
    EXPECT_FALSE(s.contains(b(7)));
    s.touch(b(7));
    EXPECT_TRUE(s.contains(b(7)));
}

TEST(LruStackTest, PopEmptyPanics)
{
    LruStack s;
    EXPECT_ANY_THROW(s.popLru());
}

TEST(LruPolicyTest, EvictsLeastRecentlyUsed)
{
    LruPolicy p;
    Cache c(2, p);
    c.access(b(1), 0, 0);
    c.access(b(2), 1, 1);
    c.access(b(1), 2, 2);        // 2 is now LRU
    const auto r = c.access(b(3), 3, 3);
    EXPECT_EQ(r.victim, b(2));
}

TEST(LruPolicyTest, SequentialScanEvictsInOrder)
{
    LruPolicy p;
    Cache c(3, p);
    std::size_t idx = 0;
    for (BlockNum n = 0; n < 10; ++n) {
        const auto r = c.access(b(n), static_cast<Time>(n), idx++);
        if (n >= 3) {
            EXPECT_EQ(r.victim, b(n - 3));
        }
    }
}

TEST(LruPolicyTest, OnRemoveUnknownPanics)
{
    LruPolicy p;
    EXPECT_ANY_THROW(p.onRemove(b(1)));
}

TEST(LruPolicyTest, LoopLargerThanCacheAlwaysMisses)
{
    // Classic LRU pathology: cyclic access over capacity+1 blocks.
    LruPolicy p;
    Cache c(3, p);
    std::size_t idx = 0;
    for (int round = 0; round < 5; ++round) {
        for (BlockNum n = 0; n < 4; ++n) {
            const Time now = static_cast<Time>(idx);
            c.access(b(n), now, idx++);
        }
    }
    EXPECT_EQ(c.stats().hits, 0u);
}

} // namespace
} // namespace pacache
