#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/mq.hh"
#include "util/random.hh"

namespace pacache
{
namespace
{

BlockId
b(BlockNum n)
{
    return BlockId{0, n};
}

TEST(MqPolicyTest, QueueForIsLogarithmic)
{
    MqPolicy p;
    EXPECT_EQ(p.queueFor(1), 0u);
    EXPECT_EQ(p.queueFor(2), 1u);
    EXPECT_EQ(p.queueFor(3), 1u);
    EXPECT_EQ(p.queueFor(4), 2u);
    EXPECT_EQ(p.queueFor(255), 7u);
    EXPECT_EQ(p.queueFor(1 << 20), 7u); // clamped at m-1
}

TEST(MqPolicyTest, FrequentBlocksOutliveInfrequent)
{
    MqPolicy p;
    Cache c(3, p);
    std::size_t idx = 0;
    c.access(b(1), 0, idx++);
    for (int i = 0; i < 8; ++i)
        c.access(b(1), 0, idx++); // block 1 is hot (queue ~3)
    c.access(b(2), 0, idx++);
    c.access(b(3), 0, idx++);
    const auto r = c.access(b(4), 0, idx++);
    // Eviction comes from the lowest queue: not the hot block.
    EXPECT_NE(r.victim, b(1));
}

TEST(MqPolicyTest, GhostRestoresFrequency)
{
    MqPolicy::Params params;
    params.ghostCapacity = 16;
    MqPolicy p(params);
    Cache c(2, p);
    std::size_t idx = 0;
    for (int i = 0; i < 10; ++i)
        c.access(b(1), 0, idx++); // hot
    c.access(b(2), 0, idx++);
    c.access(b(3), 0, idx++); // evicts 2 (cold), keeps hot 1... fills
    c.access(b(4), 0, idx++); // forces another eviction
    // Re-fetch block 1; even if it was evicted, the ghost remembers
    // its frequency and it lands in a high queue again. Exercise the
    // path and check consistency.
    c.access(b(1), 0, idx++);
    EXPECT_LE(c.size(), 2u);
}

TEST(MqPolicyTest, LifetimeDemotesIdleBlocks)
{
    MqPolicy::Params params;
    params.lifeTime = 4; // aggressive demotion
    MqPolicy p(params);
    Cache c(4, p);
    std::size_t idx = 0;
    for (int i = 0; i < 6; ++i)
        c.access(b(1), 0, idx++); // very hot early
    // Now a stream of other blocks ages block 1 out.
    for (BlockNum n = 10; n < 13; ++n)
        c.access(b(n), 0, idx++);
    for (int i = 0; i < 12; ++i)
        c.access(b(10 + (i % 3)), 0, idx++);
    const auto r = c.access(b(99), 0, idx++);
    // After expiring down the queues, the stale hot block goes.
    EXPECT_EQ(r.victim, b(1));
}

TEST(MqPolicyTest, RemoveUnknownPanics)
{
    MqPolicy p;
    EXPECT_ANY_THROW(p.onRemove(b(1)));
}

TEST(MqPolicyTest, EvictEmptyPanics)
{
    MqPolicy p;
    EXPECT_ANY_THROW(p.evict(0, 0));
}

TEST(MqPolicyTest, LongRandomRunStaysConsistent)
{
    MqPolicy p;
    Cache c(64, p);
    Rng rng(13);
    std::size_t idx = 0;
    ZipfSampler zipf(500, 1.0);
    for (int i = 0; i < 30000; ++i) {
        c.access(b(zipf.sample(rng)), 0, idx++);
        ASSERT_LE(c.size(), 64u);
    }
    // Zipf workload: MQ should capture the hot head.
    EXPECT_GT(c.stats().hitRatio(), 0.4);
}

} // namespace
} // namespace pacache
