#include <gtest/gtest.h>

#include "cache/belady.hh"
#include "cache/cache.hh"
#include "cache/lru.hh"
#include "trace/synthetic.hh"

namespace pacache
{
namespace
{

std::vector<BlockAccess>
stream(std::initializer_list<BlockNum> blocks)
{
    std::vector<BlockAccess> out;
    Time t = 0;
    for (BlockNum n : blocks) {
        out.push_back({t, BlockId{0, n}, false, out.size()});
        t += 1.0;
    }
    return out;
}

uint64_t
missesWith(ReplacementPolicy &p, const std::vector<BlockAccess> &accs,
           std::size_t capacity)
{
    Cache c(capacity, p);
    p.prepare(accs);
    for (std::size_t i = 0; i < accs.size(); ++i)
        c.access(accs[i].block, accs[i].time, i);
    return c.stats().misses;
}

TEST(BeladyTest, TextbookExample)
{
    // OPT on 2 3 2 1 5 2 4 5 3 2 5 2 with 3 frames: misses at
    // 2,3,1,5,4 and the second-to-last 2 -> 6 misses.
    const auto accs = stream({2, 3, 2, 1, 5, 2, 4, 5, 3, 2, 5, 2});
    BeladyPolicy p;
    EXPECT_EQ(missesWith(p, accs, 3), 6u);
}

TEST(BeladyTest, EvictsFurthestNextUse)
{
    const auto accs = stream({1, 2, 3, 4, 1, 2, 3});
    BeladyPolicy p;
    Cache c(3, p);
    p.prepare(accs);
    c.access(accs[0].block, 0, 0);
    c.access(accs[1].block, 1, 1);
    c.access(accs[2].block, 2, 2);
    // Access 4: blocks 1,2,3 are next used at 4,5,6. Insert of 4
    // (never used again... it isn't referenced later) evicts the
    // furthest: block 3.
    const auto r = c.access(accs[3].block, 3, 3);
    EXPECT_EQ(r.victim, (BlockId{0, 3}));
}

TEST(BeladyTest, RequiresPrepare)
{
    BeladyPolicy p;
    EXPECT_ANY_THROW(p.onAccess(BlockId{0, 1}, 0, 0, false));
}

TEST(BeladyTest, NeverWorseThanLruOnRandomTraces)
{
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        SyntheticParams sp;
        sp.numRequests = 4000;
        sp.numDisks = 2;
        sp.seed = seed;
        sp.address.footprintBlocks = 300;
        const Trace t = generateSynthetic(sp);
        const auto accs = expandTrace(t);

        BeladyPolicy belady;
        LruPolicy lru;
        const uint64_t bm = missesWith(belady, accs, 64);
        const uint64_t lm = missesWith(lru, accs, 64);
        EXPECT_LE(bm, lm) << "seed " << seed;
    }
}

TEST(BeladyTest, InfiniteReuseDistanceBlocksGoFirst)
{
    // Block 9 never recurs; it must be the first victim.
    const auto accs = stream({1, 2, 9, 1, 2, 3, 1, 2, 3});
    BeladyPolicy p;
    Cache c(3, p);
    p.prepare(accs);
    for (std::size_t i = 0; i < 5; ++i)
        c.access(accs[i].block, accs[i].time, i);
    const auto r = c.access(accs[5].block, accs[5].time, 5);
    EXPECT_EQ(r.victim, (BlockId{0, 9}));
}

TEST(BeladyTest, PerfectOnCyclicWorkloadWithEnoughRoom)
{
    // Cyclic over 4 blocks with capacity 4: only cold misses.
    std::vector<BlockAccess> accs;
    for (int i = 0; i < 40; ++i)
        accs.push_back({static_cast<Time>(i),
                        BlockId{0, static_cast<BlockNum>(i % 4)}, false,
                        static_cast<std::size_t>(i)});
    BeladyPolicy p;
    EXPECT_EQ(missesWith(p, accs, 4), 4u);
}

} // namespace
} // namespace pacache
