#include <gtest/gtest.h>

#include "disk/service_model.hh"

namespace pacache
{
namespace
{

ServiceModel
model()
{
    return ServiceModel(DiskSpec::ultrastar36z15());
}

TEST(ServiceModel, ZeroSeekForSameBlock)
{
    EXPECT_DOUBLE_EQ(model().seekTime(100, 100), 0.0);
}

TEST(ServiceModel, SeekGrowsWithDistance)
{
    const ServiceModel sm = model();
    const Time near = sm.seekTime(0, 1000);
    const Time far = sm.seekTime(0, 4000000);
    EXPECT_GT(near, 0.0);
    EXPECT_GT(far, near);
    EXPECT_LE(far, sm.params().fullStrokeSeek + 1e-12);
}

TEST(ServiceModel, SeekBoundedByTrackToTrack)
{
    const ServiceModel sm = model();
    EXPECT_GE(sm.seekTime(0, 1), sm.params().trackToTrackSeek);
}

TEST(ServiceModel, SeekIsSymmetric)
{
    const ServiceModel sm = model();
    EXPECT_DOUBLE_EQ(sm.seekTime(10, 99999), sm.seekTime(99999, 10));
}

TEST(ServiceModel, RotationalLatencyIsHalfRevolution)
{
    // 15000 RPM -> 4 ms per revolution -> 2 ms average latency.
    EXPECT_NEAR(model().rotationalLatency(), 0.002, 1e-12);
}

TEST(ServiceModel, TransferTimeScalesWithBlocks)
{
    const ServiceModel sm = model();
    EXPECT_NEAR(sm.transferTime(2), 2 * sm.transferTime(1), 1e-12);
    // 4 KiB at 55 MB/s ~ 74.5 us.
    EXPECT_NEAR(sm.transferTime(1), 4096.0 / 55e6, 1e-9);
}

TEST(ServiceModel, ServiceTimeIsSumOfComponents)
{
    const ServiceModel sm = model();
    const Time t = sm.serviceTime(0, 100000, 4);
    EXPECT_NEAR(t,
                sm.params().controllerOverhead + sm.seekTime(0, 100000) +
                    sm.rotationalLatency() + sm.transferTime(4),
                1e-12);
}

TEST(ServiceModel, ServiceEnergyUsesBothPowers)
{
    const ServiceModel sm = model();
    // Seek power 13.5 W, active power 13.5 W on this disk: energy is
    // simply 13.5 * total.
    EXPECT_NEAR(sm.serviceEnergy(0.002, 0.003), 13.5 * 0.005, 1e-12);
}

TEST(ServiceModel, ServiceEnergyDistinguishesPowersWhenDifferent)
{
    DiskSpec spec;
    spec.seekPower = 20.0;
    spec.activePower = 10.0;
    const ServiceModel sm(spec);
    EXPECT_NEAR(sm.serviceEnergy(1.0, 2.0), 20.0 + 20.0, 1e-12);
}

TEST(ServiceModel, AtSpeedFullFractionMatchesPlain)
{
    const ServiceModel sm = model();
    EXPECT_NEAR(sm.serviceTimeAtSpeed(0, 5000, 4, 1.0),
                sm.serviceTime(0, 5000, 4), 1e-12);
    EXPECT_NEAR(sm.serviceEnergyAtSpeed(0.001, 0.004, 1.0),
                sm.serviceEnergy(0.001, 0.004), 1e-12);
}

TEST(ServiceModel, HalfSpeedDoublesRotationAndTransfer)
{
    const ServiceModel sm = model();
    const Time full = sm.serviceTimeAtSpeed(0, 0, 1, 1.0);
    const Time half = sm.serviceTimeAtSpeed(0, 0, 1, 0.5);
    const Time rotating = sm.rotationalLatency() + sm.transferTime(1);
    EXPECT_NEAR(half - full, rotating, 1e-12);
}

TEST(ServiceModel, LowSpeedServiceUsesLessPower)
{
    const ServiceModel sm = model();
    // Same durations: active power drops quadratically toward the
    // standby floor.
    EXPECT_LT(sm.serviceEnergyAtSpeed(0.0, 1.0, 0.2),
              sm.serviceEnergyAtSpeed(0.0, 1.0, 1.0) / 4);
    EXPECT_GT(sm.serviceEnergyAtSpeed(0.0, 1.0, 0.2), 2.5);
}

TEST(ServiceModel, AtSpeedRejectsBadFraction)
{
    const ServiceModel sm = model();
    EXPECT_ANY_THROW(sm.serviceTimeAtSpeed(0, 0, 1, 0.0));
    EXPECT_ANY_THROW(sm.serviceEnergyAtSpeed(0, 1, 1.5));
}

TEST(ServiceModel, RejectsBadParams)
{
    ServiceParams p;
    p.capacityBlocks = 0;
    EXPECT_ANY_THROW(ServiceModel(DiskSpec{}, p));
}

} // namespace
} // namespace pacache
