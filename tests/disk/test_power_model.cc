#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "disk/power_model.hh"

namespace pacache
{
namespace
{

TEST(PowerModel, UltrastarModeCountAndEndpoints)
{
    const PowerModel pm;
    // idle@15k, NAP1..NAP4 (12k/9k/6k/3k), standby.
    ASSERT_EQ(pm.numModes(), 6u);
    EXPECT_EQ(pm.mode(0).name, "idle");
    EXPECT_EQ(pm.mode(5).name, "standby");
    EXPECT_DOUBLE_EQ(pm.mode(0).idlePower, 10.2);
    EXPECT_DOUBLE_EQ(pm.mode(5).idlePower, 2.5);
    EXPECT_DOUBLE_EQ(pm.mode(0).rpm, 15000);
    EXPECT_DOUBLE_EQ(pm.mode(5).rpm, 0);
}

TEST(PowerModel, FullSpeedModeHasNoTransitionCost)
{
    const PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.mode(0).transitionEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(pm.mode(0).transitionTime(), 0.0);
}

TEST(PowerModel, StandbyTransitionMatchesDataSheet)
{
    const PowerModel pm;
    const PowerMode &sb = pm.mode(5);
    EXPECT_DOUBLE_EQ(sb.spinUpTime, 10.9);
    EXPECT_DOUBLE_EQ(sb.spinUpEnergy, 135);
    EXPECT_DOUBLE_EQ(sb.spinDownTime, 1.5);
    EXPECT_DOUBLE_EQ(sb.spinDownEnergy, 13);
}

TEST(PowerModel, PowersDecreaseTransitionsIncrease)
{
    const PowerModel pm;
    for (std::size_t i = 1; i < pm.numModes(); ++i) {
        EXPECT_LT(pm.mode(i).idlePower, pm.mode(i - 1).idlePower);
        EXPECT_GT(pm.mode(i).transitionEnergy(),
                  pm.mode(i - 1).transitionEnergy());
        EXPECT_GT(pm.mode(i).transitionTime(),
                  pm.mode(i - 1).transitionTime());
    }
}

TEST(PowerModel, EnergyLineFormula)
{
    const PowerModel pm;
    // E_i(t) = P_i * t + TE_i.
    EXPECT_DOUBLE_EQ(pm.energyLine(0, 10.0), 102.0);
    EXPECT_DOUBLE_EQ(pm.energyLine(5, 10.0), 25.0 + 148.0);
}

TEST(PowerModel, EnvelopeIsMinimumOfLines)
{
    const PowerModel pm;
    for (double t = 0.0; t < 400.0; t += 3.7) {
        double mn = pm.energyLine(0, t);
        for (std::size_t i = 1; i < pm.numModes(); ++i)
            mn = std::min(mn, pm.energyLine(i, t));
        EXPECT_DOUBLE_EQ(pm.envelope(t), mn);
    }
}

TEST(PowerModel, EnvelopeShortGapsStayAtFullSpeed)
{
    const PowerModel pm;
    EXPECT_EQ(pm.bestMode(0.0), 0u);
    EXPECT_EQ(pm.bestMode(1.0), 0u);
}

TEST(PowerModel, EnvelopeLongGapsGoToStandby)
{
    const PowerModel pm;
    EXPECT_EQ(pm.bestMode(1000.0), pm.deepestMode());
}

TEST(PowerModel, EveryModeOnEnvelope)
{
    // The quadratic-power / linear-transition model keeps every mode
    // on the lower envelope (the Figure-2 geometry).
    const PowerModel pm;
    ASSERT_EQ(pm.envelopeModes().size(), pm.numModes());
    for (std::size_t i = 0; i < pm.numModes(); ++i)
        EXPECT_EQ(pm.envelopeModes()[i], i);
}

TEST(PowerModel, ThresholdsStrictlyIncrease)
{
    const PowerModel pm;
    const auto &thr = pm.thresholds();
    ASSERT_EQ(thr.size(), pm.envelopeModes().size() - 1);
    for (std::size_t i = 1; i < thr.size(); ++i)
        EXPECT_GT(thr[i], thr[i - 1]);
    EXPECT_GT(thr.front(), 0.0);
}

TEST(PowerModel, ThresholdsAreLineIntersections)
{
    const PowerModel pm;
    const auto &env = pm.envelopeModes();
    const auto &thr = pm.thresholds();
    for (std::size_t k = 0; k < thr.size(); ++k) {
        EXPECT_NEAR(pm.energyLine(env[k], thr[k]),
                    pm.energyLine(env[k + 1], thr[k]), 1e-9);
    }
}

TEST(PowerModel, BreakEvenSolvesEquality)
{
    const PowerModel pm;
    for (std::size_t i = 1; i < pm.numModes(); ++i) {
        const Time be = pm.breakEvenTime(i);
        EXPECT_NEAR(pm.energyLine(0, be), pm.energyLine(i, be), 1e-9);
    }
    EXPECT_DOUBLE_EQ(pm.breakEvenTime(0), 0.0);
}

TEST(PowerModel, StandbyBreakEvenMatchesHandComputation)
{
    const PowerModel pm;
    // (135 + 13) / (10.2 - 2.5) = 19.2207...
    EXPECT_NEAR(pm.breakEvenTime(pm.deepestMode()), 148.0 / 7.7, 1e-9);
}

TEST(PowerModel, SavingsEnvelopeIsNonNegativeAndMonotone)
{
    const PowerModel pm;
    double prev = 0;
    for (double t = 0; t < 500.0; t += 2.3) {
        const Energy s = pm.maxSavings(t);
        EXPECT_GE(s, -1e-12);
        EXPECT_GE(s, prev - 1e-9); // monotone non-decreasing
        prev = s;
    }
}

TEST(PowerModel, SavingsLineIsEnergyDifference)
{
    const PowerModel pm;
    for (std::size_t i = 0; i < pm.numModes(); ++i) {
        EXPECT_NEAR(pm.savingsLine(i, 50.0),
                    pm.energyLine(0, 50.0) - pm.energyLine(i, 50.0),
                    1e-12);
    }
}

TEST(PowerModel, PracticalModeWalksThresholds)
{
    const PowerModel pm;
    const auto &thr = pm.thresholds();
    EXPECT_EQ(pm.practicalModeAt(0.0), 0u);
    EXPECT_EQ(pm.practicalModeAt(thr[0] - 1e-6), 0u);
    EXPECT_EQ(pm.practicalModeAt(thr[0] + 1e-6), pm.envelopeModes()[1]);
    EXPECT_EQ(pm.practicalModeAt(thr.back() + 1.0), pm.deepestMode());
}

TEST(PowerModel, PracticalEnergyShortGapIsPureIdle)
{
    const PowerModel pm;
    const Time t = pm.thresholds()[0] / 2;
    EXPECT_NEAR(pm.practicalEnergy(t),
                pm.mode(0).idlePower * t +
                    pm.mode(0).spinDownEnergy + pm.mode(0).spinUpEnergy,
                1e-9);
}

TEST(PowerModel, PracticalAtLeastOracle)
{
    const PowerModel pm;
    for (double t = 0.01; t < 1000.0; t *= 1.3)
        EXPECT_GE(pm.practicalEnergy(t), pm.envelope(t) - 1e-9);
}

TEST(PowerModel, TwoModeFactory)
{
    const PowerModel pm = makeTwoModeModel(10.0, 1.0, 90.0, 5.0, 0.0, 0.0);
    ASSERT_EQ(pm.numModes(), 2u);
    // Break-even: 90 / (10 - 1) = 10.
    EXPECT_NEAR(pm.breakEvenTime(1), 10.0, 1e-12);
    ASSERT_EQ(pm.thresholds().size(), 1u);
    EXPECT_NEAR(pm.thresholds()[0], 10.0, 1e-12);
}

TEST(PowerModel, DegenerateLinearCostsPruneMiddleModes)
{
    // When power AND transition energy are both linear in the mode
    // index, all E_i(t) lines pass through one point and intermediate
    // modes never win strictly: the envelope keeps only the
    // endpoints. (Exact binary arithmetic so the tie is exact.)
    DiskSpec spec;
    std::vector<PowerMode> modes{
        PowerMode{"idle", 15000, 10.0, 0, 0, 0, 0},
        PowerMode{"mid", 10000, 8.0, 1, 16, 0, 0},
        PowerMode{"standby", 0, 6.0, 2, 32, 0, 0},
    };
    const PowerModel pm(spec, modes);
    ASSERT_EQ(pm.envelopeModes().size(), 2u);
    EXPECT_EQ(pm.envelopeModes().front(), 0u);
    EXPECT_EQ(pm.envelopeModes().back(), 2u);
    ASSERT_EQ(pm.thresholds().size(), 1u);
    EXPECT_DOUBLE_EQ(pm.thresholds()[0], 8.0); // 32 / (10 - 6)
}

TEST(PowerModel, RejectsNonMonotoneModes)
{
    DiskSpec spec;
    std::vector<PowerMode> bad{
        PowerMode{"a", 15000, 5.0, 0, 0, 0, 0},
        PowerMode{"b", 10000, 7.0, 1, 10, 1, 1}, // power increases
    };
    EXPECT_ANY_THROW(PowerModel(spec, bad));
}

TEST(PowerModel, ModeIndexOutOfRangePanics)
{
    const PowerModel pm;
    EXPECT_ANY_THROW(pm.mode(99));
}

TEST(PowerModel, InfiniteGapPricesToInfinityNotNaN)
{
    // Latent-hazard guard: an infinite gap must price to +inf, not
    // NaN (a zero-slope +inf-intercept envelope pad would evaluate to
    // 0 * inf = NaN) and must not index past the practical segment
    // table's +inf sentinel bound.
    const Time inf = std::numeric_limits<Time>::infinity();
    const PowerModel pm;
    EXPECT_TRUE(std::isinf(pm.envelope(inf)));
    EXPECT_TRUE(std::isinf(pm.practicalEnergy(inf)));
    EXPECT_EQ(pm.practicalModeAt(inf), pm.envelopeModes().back());
}

// The closed-form segment tables must reproduce the legacy per-call
// scans *exactly* — OPG's golden-equivalence guarantee rides on
// penalties being bit-identical, not merely close.
TEST(PowerModel, EnvelopeTableBitIdenticalToReferenceScan)
{
    const PowerModel pm;
    const auto &thr = pm.thresholds();
    const Time horizon = (thr.empty() ? 10.0 : thr.back()) * 4 + 100;
    for (int i = 0; i <= 20000; ++i) {
        const Time t = horizon * i / 20000.0;
        ASSERT_EQ(pm.envelope(t), pm.envelopeRef(t)) << "t=" << t;
        ASSERT_EQ(pm.bestMode(t), pm.bestModeRef(t)) << "t=" << t;
    }
    // At and immediately around every mode-switch abscissa.
    for (std::size_t k = 0; k + 1 < pm.envelopeModes().size(); ++k) {
        const Time b = pm.envelopeTable()[k].bound;
        for (Time t : {std::nextafter(b, 0.0), b,
                       std::nextafter(b, b + 1)}) {
            ASSERT_EQ(pm.envelope(t), pm.envelopeRef(t)) << "t=" << t;
        }
    }
}

TEST(PowerModel, PracticalTableBitIdenticalToReferenceWalk)
{
    const PowerModel pm;
    const auto &thr = pm.thresholds();
    const Time horizon = (thr.empty() ? 10.0 : thr.back()) * 4 + 100;
    for (int i = 0; i <= 20000; ++i) {
        const Time t = horizon * i / 20000.0;
        ASSERT_EQ(pm.practicalEnergy(t), pm.practicalEnergyRef(t))
            << "t=" << t;
    }
    for (const Time b : thr) {
        for (Time t : {std::nextafter(b, 0.0), b,
                       std::nextafter(b, b + 1)}) {
            ASSERT_EQ(pm.practicalEnergy(t), pm.practicalEnergyRef(t))
                << "t=" << t;
        }
    }
}

TEST(PowerModel, TablesBitIdenticalOnCustomModeSets)
{
    DiskSpec spec;
    const std::vector<PowerMode> modes{
        PowerMode{"idle", 15000, 10.0, 0, 0, 0, 0},
        PowerMode{"low", 12000, 8.5, 0.5, 9, 0.3, 0.4},
        PowerMode{"mid", 10000, 6.0, 1, 16, 0.8, 1.1},
        PowerMode{"standby", 0, 2.0, 2, 32, 1.5, 2.0},
    };
    const PowerModel pm(spec, modes);
    for (int i = 0; i <= 20000; ++i) {
        const Time t = 60.0 * i / 20000.0;
        ASSERT_EQ(pm.envelope(t), pm.envelopeRef(t)) << "t=" << t;
        ASSERT_EQ(pm.practicalEnergy(t), pm.practicalEnergyRef(t))
            << "t=" << t;
    }
}

} // namespace
} // namespace pacache
