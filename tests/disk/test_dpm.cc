#include <gtest/gtest.h>

#include "disk/disk.hh"
#include "disk/dpm.hh"

namespace pacache
{
namespace
{

TEST(AlwaysOn, NeverDemotes)
{
    AlwaysOnDpm dpm;
    EXPECT_FALSE(dpm.nextDemotion(0, 0, 0.0).has_value());
    EXPECT_FALSE(dpm.nextDemotion(0, 0, 1e9).has_value());
}

TEST(Practical, WalksEnvelopeSteps)
{
    const PowerModel pm;
    PracticalDpm dpm(pm);
    const auto &env = pm.envelopeModes();
    const auto &thr = pm.thresholds();

    std::size_t mode = 0;
    for (std::size_t k = 0; k + 1 < env.size(); ++k) {
        const auto d = dpm.nextDemotion(0, mode, 0.0);
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(d->targetMode, env[k + 1]);
        EXPECT_DOUBLE_EQ(d->atIdleAge, thr[k]);
        mode = d->targetMode;
    }
    EXPECT_FALSE(dpm.nextDemotion(0, mode, 0.0).has_value());
}

TEST(Practical, DemotionTargetsDeepen)
{
    const PowerModel pm;
    PracticalDpm dpm(pm);
    std::size_t mode = 0;
    Time last = -1;
    while (auto d = dpm.nextDemotion(0, mode, 0.0)) {
        EXPECT_GT(d->targetMode, mode);
        EXPECT_GT(d->atIdleAge, last);
        last = d->atIdleAge;
        mode = d->targetMode;
    }
    EXPECT_EQ(mode, pm.deepestMode());
}

TEST(Practical, OffEnvelopeModeResolves)
{
    // A mode not on the envelope (possible when another policy parked
    // the disk) must still resolve to a deeper envelope step.
    const PowerModel pm = makeTwoModeModel(10.0, 1.0, 90.0, 5.0, 0, 0);
    PracticalDpm dpm(pm);
    const auto d = dpm.nextDemotion(0, 0, 0.0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->targetMode, 1u);
}

TEST(FixedTimeout, DemotesOnceAtTimeout)
{
    FixedTimeoutDpm dpm(30.0, 5);
    const auto d = dpm.nextDemotion(0, 0, 0.0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->targetMode, 5u);
    EXPECT_DOUBLE_EQ(d->atIdleAge, 30.0);
    EXPECT_FALSE(dpm.nextDemotion(0, 5, 100.0).has_value());
}

TEST(FixedTimeout, NoDemotionBelowTarget)
{
    FixedTimeoutDpm dpm(30.0, 3);
    EXPECT_FALSE(dpm.nextDemotion(0, 4, 0.0).has_value());
}

TEST(Adaptive, StartsAtBreakEven)
{
    const PowerModel pm;
    AdaptiveDpm dpm(pm);
    EXPECT_NEAR(dpm.timeoutOf(0), pm.breakEvenTime(pm.deepestMode()),
                1e-9);
    const auto d = dpm.nextDemotion(0, 0, 0.0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->targetMode, pm.deepestMode());
}

TEST(Adaptive, BadSleepBacksOff)
{
    const PowerModel pm;
    AdaptiveDpm dpm(pm);
    const Time before = dpm.timeoutOf(0);
    // Woken from standby shortly after demotion: a bad sleep.
    dpm.onIdleEnd(0, pm.deepestMode(), before + 1.0);
    EXPECT_NEAR(dpm.timeoutOf(0), before * 2.0, 1e-9);
}

TEST(Adaptive, GoodSleepLeansIn)
{
    const PowerModel pm;
    AdaptiveDpm dpm(pm);
    const Time before = dpm.timeoutOf(0);
    dpm.onIdleEnd(0, pm.deepestMode(), before * 10.0);
    EXPECT_NEAR(dpm.timeoutOf(0), before * 0.9, 1e-9);
}

TEST(Adaptive, TimeoutIsClamped)
{
    const PowerModel pm;
    AdaptiveDpm::Params p;
    p.maxTimeout = 40.0;
    p.minTimeout = 5.0;
    AdaptiveDpm dpm(pm, pm.deepestMode(), p);
    for (int i = 0; i < 10; ++i)
        dpm.onIdleEnd(0, pm.deepestMode(), 0.1);
    EXPECT_DOUBLE_EQ(dpm.timeoutOf(0), 40.0);
    for (int i = 0; i < 100; ++i)
        dpm.onIdleEnd(0, pm.deepestMode(), 1e6);
    EXPECT_DOUBLE_EQ(dpm.timeoutOf(0), 5.0);
}

TEST(Adaptive, DisksAdaptIndependently)
{
    const PowerModel pm;
    AdaptiveDpm dpm(pm);
    const Time init = dpm.timeoutOf(0);
    dpm.onIdleEnd(3, pm.deepestMode(), init + 1.0); // disk 3 bad sleep
    EXPECT_GT(dpm.timeoutOf(3), init);
    EXPECT_NEAR(dpm.timeoutOf(0), init, 1e-9);
    EXPECT_NEAR(dpm.timeoutOf(7), init, 1e-9); // lazily initialized
}

TEST(Adaptive, WakeBeforeDemotionDoesNotBackOff)
{
    const PowerModel pm;
    AdaptiveDpm dpm(pm);
    const Time before = dpm.timeoutOf(0);
    // The disk never reached the target mode: not a bad sleep.
    dpm.onIdleEnd(0, 0, 1.0);
    EXPECT_NEAR(dpm.timeoutOf(0), before, 1e-9);
}

TEST(Adaptive, DrivesDiskEndToEnd)
{
    // Alternating workload: clusters 5 s apart inside, 200 s gaps
    // between — the adaptive policy should sleep in the long gaps.
    const PowerModel pm;
    const ServiceModel sm(pm.spec());
    EventQueue eq;
    AdaptiveDpm dpm(pm);
    Disk disk(0, eq, pm, sm, dpm);
    for (int cluster = 0; cluster < 5; ++cluster) {
        for (int j = 0; j < 3; ++j) {
            eq.schedule(10.0 + 200.0 * cluster + 5.0 * j, [&](Time t) {
                DiskRequest r;
                r.arrival = t;
                disk.submit(std::move(r));
            });
        }
    }
    eq.runAll();
    const Time horizon = std::max(1100.0, eq.now());
    eq.runUntil(horizon);
    disk.finalize(horizon);
    EXPECT_GT(disk.energy().spinUps, 0u);
    // Cheaper than staying at full speed the whole time.
    EXPECT_LT(disk.energy().total(), 10.2 * horizon);
}

} // namespace
} // namespace pacache
