#include <gtest/gtest.h>

#include "disk/dpm.hh"
#include "disk/oracle_dpm.hh"

namespace pacache
{
namespace
{

TEST(OracleAnalyzer, ShortClosedGapStaysIdle)
{
    const PowerModel pm;
    OracleAnalyzer oa(pm);
    EnergyStats none(pm.numModes());
    const auto r = oa.price({5.0}, none, false);
    EXPECT_NEAR(r.totalEnergy, 10.2 * 5.0, 1e-9);
    EXPECT_EQ(r.stats.spinUps, 0u);
}

TEST(OracleAnalyzer, LongClosedGapUsesEnvelope)
{
    const PowerModel pm;
    OracleAnalyzer oa(pm);
    EnergyStats none(pm.numModes());
    const Time gap = 500.0;
    const auto r = oa.price({gap}, none, false);
    EXPECT_NEAR(r.totalEnergy, pm.envelope(gap), 1e-9);
    EXPECT_EQ(r.stats.spinUps, 1u);
    EXPECT_EQ(r.stats.spinDowns, 1u);
}

TEST(OracleAnalyzer, EveryClosedGapPricedAtEnvelope)
{
    const PowerModel pm;
    OracleAnalyzer oa(pm);
    EnergyStats none(pm.numModes());
    const std::vector<Time> gaps{0.5, 12.0, 17.0, 25.0, 60.0, 120.0,
                                 400.0};
    const auto r = oa.price(gaps, none, false);
    Energy expect = 0;
    for (Time g : gaps)
        expect += pm.envelope(g);
    EXPECT_NEAR(r.totalEnergy, expect, 1e-6);
}

TEST(OracleAnalyzer, TrailingGapPaysNoSpinUp)
{
    const PowerModel pm;
    OracleAnalyzer oa(pm);
    EnergyStats none(pm.numModes());
    const auto closed = oa.price({1000.0}, none, false);
    const auto open = oa.price({1000.0}, none, true);
    EXPECT_LT(open.totalEnergy, closed.totalEnergy);
    EXPECT_EQ(open.stats.spinUps, 0u);
    // Long trailing gap: standby park + spin-down only.
    EXPECT_NEAR(open.totalEnergy, 2.5 * 1000.0 + 13.0, 1e-9);
}

TEST(OracleAnalyzer, ServiceEnergyCarriesOver)
{
    const PowerModel pm;
    OracleAnalyzer oa(pm);
    EnergyStats svc(pm.numModes());
    svc.serviceEnergy = 77.0;
    svc.busyTime = 3.0;
    svc.requests = 9;
    const auto r = oa.price({1.0}, svc, false);
    EXPECT_NEAR(r.totalEnergy, 77.0 + 10.2, 1e-9);
    EXPECT_EQ(r.stats.requests, 9u);
}

TEST(OracleAnalyzer, PricesRealDiskTimeline)
{
    // Simulate an always-on disk and re-price it; oracle energy must
    // not exceed the always-on energy.
    PowerModel pm;
    ServiceModel sm(pm.spec());
    EventQueue eq;
    AlwaysOnDpm always;
    Disk disk(0, eq, pm, sm, always);

    for (int i = 0; i < 6; ++i) {
        eq.schedule(30.0 * (i + 1), [&](Time t) {
            DiskRequest r;
            r.arrival = t;
            r.block = 1234;
            disk.submit(std::move(r));
        });
    }
    eq.runAll();
    const Time horizon = std::max(400.0, eq.now());
    eq.runUntil(horizon);
    disk.finalize(horizon);

    OracleAnalyzer oa(pm);
    const auto r = oa.priceDisk(disk);
    EXPECT_LT(r.totalEnergy, disk.energy().total());
    EXPECT_GT(r.totalEnergy, 0.0);
    // Same busy accounting.
    EXPECT_DOUBLE_EQ(r.stats.busyTime, disk.energy().busyTime);
}

} // namespace
} // namespace pacache
