#include <gtest/gtest.h>

#include <cmath>

#include "disk/disk.hh"
#include "disk/dpm.hh"

namespace pacache
{
namespace
{

/** Shared fixture: one disk, selectable DPM. */
struct DiskHarness
{
    PowerModel pm;
    ServiceModel sm;
    EventQueue eq;
    AlwaysOnDpm alwaysOn;
    PracticalDpm practical;

    DiskHarness() : pm(), sm(pm.spec()), practical(pm) {}

    std::unique_ptr<Disk>
    make(Dpm &dpm)
    {
        return std::make_unique<Disk>(0, eq, pm, sm, dpm);
    }

    void
    submitAt(Disk &d, Time when, BlockNum block = 0)
    {
        eq.schedule(when, [&d, block](Time t) {
            DiskRequest r;
            r.arrival = t;
            r.block = block;
            d.submit(std::move(r));
        });
    }
};

TEST(Disk, IdleDiskAccruesIdleEnergyUnderAlwaysOn)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    h.eq.runUntil(100.0);
    d->finalize(100.0);
    const EnergyStats &s = d->energy();
    EXPECT_NEAR(s.idleEnergyPerMode[0], 10.2 * 100.0, 1e-6);
    EXPECT_NEAR(s.totalTime(), 100.0, 1e-9);
    EXPECT_EQ(s.spinUps, 0u);
    EXPECT_EQ(s.spinDowns, 0u);
}

TEST(Disk, ServicesARequestAndCountsIt)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    h.submitAt(*d, 1.0, 500);
    h.eq.runAll();
    d->finalize(std::max(10.0, h.eq.now()));
    EXPECT_EQ(d->energy().requests, 1u);
    EXPECT_GT(d->energy().busyTime, 0.0);
    EXPECT_GT(d->energy().serviceEnergy, 0.0);
    EXPECT_EQ(d->responses().count(), 1u);
    // Response = service time only (disk was idle at full speed).
    EXPECT_LT(d->responses().mean(), 0.05);
}

TEST(Disk, TimeAccountingSumsToHorizon)
{
    DiskHarness h;
    auto d = h.make(h.practical);
    for (int i = 0; i < 5; ++i)
        h.submitAt(*d, 10.0 + 40.0 * i, 1000 * i);
    h.eq.runAll();
    const Time horizon = std::max(300.0, h.eq.now());
    h.eq.runUntil(horizon);
    d->finalize(horizon);
    EXPECT_NEAR(d->energy().totalTime(), horizon, 1e-6);
}

TEST(Disk, PracticalDpmDescendsWhenIdle)
{
    DiskHarness h;
    auto d = h.make(h.practical);
    // One request, then a long silence: the disk should walk all the
    // way down to standby.
    h.submitAt(*d, 1.0);
    h.eq.runAll();
    EXPECT_EQ(d->state(), Disk::State::Parked);
    EXPECT_EQ(d->currentMode(), h.pm.deepestMode());
    EXPECT_EQ(d->energy().spinDowns, h.pm.numModes() - 1);
}

TEST(Disk, SpinUpOnRequestFromStandby)
{
    DiskHarness h;
    auto d = h.make(h.practical);
    h.submitAt(*d, 1.0);
    h.submitAt(*d, 500.0); // long after standby threshold
    h.eq.runAll();
    d->finalize(std::max(600.0, h.eq.now()));
    EXPECT_EQ(d->energy().spinUps, 1u);
    EXPECT_NEAR(d->energy().spinUpEnergy, 135.0, 1e-9);
    EXPECT_NEAR(d->energy().spinUpTime, 10.9, 1e-9);
    // The second response pays the full spin-up.
    EXPECT_GT(d->responses().max(), 10.9);
}

TEST(Disk, ShortGapStaysAtFullSpeed)
{
    DiskHarness h;
    auto d = h.make(h.practical);
    h.submitAt(*d, 1.0);
    h.submitAt(*d, 2.0); // below the first threshold (~10.7 s)
    h.eq.runAll();
    d->finalize(std::max(200.0, h.eq.now()));
    // No spin-up was ever needed; the only demotions are the full
    // descent after the trace goes quiet.
    EXPECT_EQ(d->energy().spinUps, 0u);
    EXPECT_EQ(d->energy().spinDowns, h.pm.numModes() - 1);
    EXPECT_LT(d->responses().max(), 0.1);
}

TEST(Disk, MidGapArrivalSpinsUpFromIntermediateMode)
{
    DiskHarness h;
    auto d = h.make(h.practical);
    const Time thr0 = h.pm.thresholds()[0];
    const Time thr1 = h.pm.thresholds()[1];
    h.submitAt(*d, 1.0);
    // Arrive while parked in the first NAP mode.
    const Time gap_arrival = 1.0 + (thr0 + thr1) / 2;
    h.submitAt(*d, gap_arrival, 42);
    h.eq.runAll();
    d->finalize(std::max(gap_arrival + 50.0, h.eq.now()));
    EXPECT_EQ(d->energy().spinUps, 1u);
    // Spin-up energy from NAP1, well below the standby 135 J.
    EXPECT_LT(d->energy().spinUpEnergy, 135.0);
    EXPECT_GT(d->energy().spinUpEnergy, 0.0);
    // One demotion before the arrival, then a full descent once the
    // trace goes quiet: numModes transitions in total.
    EXPECT_EQ(d->energy().spinDowns, h.pm.numModes());
}

TEST(Disk, QueueDrainsFcfs)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    std::vector<BlockNum> completed;
    for (int i = 0; i < 4; ++i) {
        h.eq.schedule(1.0, [&, i](Time t) {
            DiskRequest r;
            r.arrival = t;
            r.block = 100 + i;
            r.onComplete = [&completed](Time, const DiskRequest &req) {
                completed.push_back(req.block);
            };
            d->submit(std::move(r));
        });
    }
    h.eq.runAll();
    ASSERT_EQ(completed.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(completed[i], 100u + i);
}

TEST(Disk, IdleGapsRecordArrivalDistances)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    h.submitAt(*d, 10.0);
    h.submitAt(*d, 30.0);
    h.eq.runAll();
    d->finalize(std::max(50.0, h.eq.now()));
    // Gaps: [0,10) before the first arrival, (done1, 30), trailing.
    ASSERT_EQ(d->idleGaps().size(), 3u);
    EXPECT_NEAR(d->idleGaps()[0], 10.0, 1e-9);
    EXPECT_NEAR(d->idleGaps()[1], 20.0, 0.05); // minus service time
    EXPECT_GT(d->idleGaps()[2], 0.0);
}

TEST(Disk, MeanInterArrival)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    h.submitAt(*d, 10.0);
    h.submitAt(*d, 20.0);
    h.submitAt(*d, 40.0);
    h.eq.runAll();
    EXPECT_NEAR(d->meanInterArrival(), 15.0, 1e-9);
    EXPECT_EQ(d->arrivals(), 3u);
}

TEST(Disk, EnergyConservation)
{
    // total() must equal the sum of its parts exactly.
    DiskHarness h;
    auto d = h.make(h.practical);
    for (int i = 0; i < 8; ++i)
        h.submitAt(*d, 5.0 + 30.0 * i, 777 * i);
    h.eq.runAll();
    const Time horizon = std::max(400.0, h.eq.now());
    h.eq.runUntil(horizon);
    d->finalize(horizon);

    const EnergyStats &s = d->energy();
    Energy sum = s.serviceEnergy + s.spinUpEnergy + s.spinDownEnergy;
    for (Energy e : s.idleEnergyPerMode)
        sum += e;
    EXPECT_DOUBLE_EQ(s.total(), sum);
    EXPECT_GT(s.total(), 0.0);
}

TEST(Disk, OnActivatedFiresAfterSpinUp)
{
    DiskHarness h;
    auto d = h.make(h.practical);
    int activations = 0;
    d->setOnActivated([&](Time) { ++activations; });
    h.submitAt(*d, 1.0);
    h.submitAt(*d, 500.0);
    h.eq.runAll();
    EXPECT_EQ(activations, 1);
}

TEST(Disk, FinalizeTwicePanics)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    h.eq.runUntil(1.0);
    d->finalize(1.0);
    EXPECT_ANY_THROW(d->finalize(2.0));
}

TEST(Disk, SubmitAfterFinalizePanics)
{
    DiskHarness h;
    auto d = h.make(h.alwaysOn);
    h.eq.runUntil(1.0);
    d->finalize(1.0);
    DiskRequest r;
    r.arrival = 1.0;
    EXPECT_ANY_THROW(d->submit(std::move(r)));
}

TEST(Disk, ServeAtLowSpeedAvoidsSpinUp)
{
    DiskHarness h;
    DiskOptions opts;
    opts.serveAtLowSpeed = true;
    auto d = std::make_unique<Disk>(0, h.eq, h.pm, h.sm, h.practical,
                                    opts);
    const Time thr0 = h.pm.thresholds()[0];
    const Time thr1 = h.pm.thresholds()[1];
    h.submitAt(*d, 1.0);
    // Arrives while parked in NAP1 (still spinning): serviced there.
    h.submitAt(*d, 1.0 + (thr0 + thr1) / 2, 42);
    h.eq.runAll();
    d->finalize(std::max(400.0, h.eq.now()));
    EXPECT_EQ(d->energy().spinUps, 0u);
    EXPECT_EQ(d->energy().requests, 2u);
    // No multi-second spin-up in any response.
    EXPECT_LT(d->responses().max(), 1.0);
}

TEST(Disk, ServeAtLowSpeedIsSlowerAndCheaper)
{
    // Same two requests; option 1 vs option 2 at NAP1.
    auto run = [](bool low_speed) {
        DiskHarness h;
        DiskOptions opts;
        opts.serveAtLowSpeed = low_speed;
        Disk d(0, h.eq, h.pm, h.sm, h.practical, opts);
        const Time t2 = 1.0 + (h.pm.thresholds()[0] +
                               h.pm.thresholds()[1]) / 2;
        h.submitAt(d, 1.0);
        h.submitAt(d, t2, 42);
        h.eq.runAll();
        d.finalize(std::max(400.0, h.eq.now()));
        return std::pair<Energy, Time>{d.energy().total(),
                                       d.energy().busyTime};
    };
    const auto [e_low, busy_low] = run(true);
    const auto [e_full, busy_full] = run(false);
    EXPECT_GT(busy_low, busy_full); // slower media at 12k RPM
    EXPECT_LT(e_low, e_full);       // but no 27 J spin-up
}

TEST(Disk, ServeAtLowSpeedStillSpinsUpFromStandby)
{
    DiskHarness h;
    DiskOptions opts;
    opts.serveAtLowSpeed = true;
    auto d = std::make_unique<Disk>(0, h.eq, h.pm, h.sm, h.practical,
                                    opts);
    h.submitAt(*d, 1.0);
    h.submitAt(*d, 500.0); // standby (0 RPM) by then: must spin up
    h.eq.runAll();
    d->finalize(std::max(600.0, h.eq.now()));
    EXPECT_EQ(d->energy().spinUps, 1u);
    EXPECT_GT(d->responses().max(), 10.0);
}

TEST(Disk, ServeAtLowSpeedKeepsDescending)
{
    // After a low-speed service the DPM keeps demoting from the mode
    // the disk parked in.
    DiskHarness h;
    DiskOptions opts;
    opts.serveAtLowSpeed = true;
    auto d = std::make_unique<Disk>(0, h.eq, h.pm, h.sm, h.practical,
                                    opts);
    h.submitAt(*d, 1.0);
    h.submitAt(*d, 1.0 + (h.pm.thresholds()[0] +
                          h.pm.thresholds()[1]) / 2);
    h.eq.runAll();
    EXPECT_EQ(d->currentMode(), h.pm.deepestMode());
}

TEST(Disk, FixedTimeoutDpmGoesStraightToTarget)
{
    DiskHarness h;
    FixedTimeoutDpm dpm(5.0, h.pm.deepestMode());
    auto d = h.make(dpm);
    h.submitAt(*d, 1.0);
    h.eq.runAll();
    EXPECT_EQ(d->currentMode(), h.pm.deepestMode());
    EXPECT_EQ(d->energy().spinDowns, 1u); // one direct demotion
}

} // namespace
} // namespace pacache
