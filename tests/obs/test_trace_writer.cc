#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_check.hh"
#include "obs/trace_writer.hh"

namespace pacache::obs
{
namespace
{

TEST(TraceEventWriterTest, EmitsValidJsonDocument)
{
    TraceEventWriter w;
    w.setTrackName(0, "disk 0");
    w.complete(0, "idle", 0.0, 1.5);
    w.instant(0, "spin-up", 1.5, "event", {{"from", "idle"}});

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.at("traceEvents").isArray());
    EXPECT_EQ(doc.at("traceEvents").items.size(), 3u);
}

TEST(TraceEventWriterTest, TimestampsAreNonDecreasing)
{
    TraceEventWriter w;
    // Duration events are recorded when they close, so insertion
    // order is not timestamp order; the writer must sort.
    w.complete(0, "busy", 5.0, 7.0);
    w.complete(1, "idle", 0.0, 6.0);
    w.instant(0, "spin-down", 2.5);
    w.complete(0, "NAP1", 1.0, 2.0);

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());

    double prev = -1.0;
    for (const auto &ev : doc.at("traceEvents").items) {
        const double ts = ev->at("ts").number;
        EXPECT_GE(ts, prev) << "ts regressed";
        prev = ts;
    }
    // Spot-check microsecond conversion.
    EXPECT_DOUBLE_EQ(doc.at("traceEvents").items.front()->at("ts").number,
                     0.0);
    EXPECT_DOUBLE_EQ(doc.at("traceEvents").items.back()->at("ts").number,
                     5.0e6);
}

TEST(TraceEventWriterTest, MetadataSortsFirstRegardlessOfWhenNamed)
{
    TraceEventWriter w;
    w.complete(0, "busy", 0.0, 1.0);
    w.setTrackName(0, "disk 0"); // named late, must still lead

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    const auto &events = doc.at("traceEvents").items;
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0]->at("ph").str, "M");
    EXPECT_EQ(events[0]->at("name").str, "thread_name");
    EXPECT_EQ(events[0]->at("args").at("name").str, "disk 0");
    EXPECT_EQ(events[1]->at("ph").str, "X");
}

TEST(TraceEventWriterTest, EventShapesMatchTheTraceFormat)
{
    TraceEventWriter w;
    w.complete(3, "standby", 1.0, 4.0, "power");
    w.instant(3, "spin-up", 4.0, "event", {{"target", "full"}});

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    const auto &events = doc.at("traceEvents").items;
    ASSERT_EQ(events.size(), 2u);

    const testjson::Value &dur = *events[0];
    EXPECT_EQ(dur.at("ph").str, "X");
    EXPECT_EQ(dur.at("cat").str, "power");
    EXPECT_DOUBLE_EQ(dur.at("tid").number, 3.0);
    EXPECT_DOUBLE_EQ(dur.at("ts").number, 1.0e6);
    EXPECT_DOUBLE_EQ(dur.at("dur").number, 3.0e6);

    const testjson::Value &inst = *events[1];
    EXPECT_EQ(inst.at("ph").str, "i");
    EXPECT_EQ(inst.at("s").str, "t");
    EXPECT_FALSE(inst.has("dur"));
    EXPECT_EQ(inst.at("args").at("target").str, "full");
}

TEST(TraceEventWriterTest, WriteJsonIsIdempotent)
{
    TraceEventWriter w;
    w.complete(0, "busy", 2.0, 3.0);
    w.complete(0, "idle", 0.0, 2.0);

    std::ostringstream first, second;
    w.writeJson(first);
    w.writeJson(second);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(w.eventCount(), 2u);
}

TEST(TraceEventWriterTest, NamesWithSpecialCharactersStayValid)
{
    TraceEventWriter w;
    w.instant(0, "flip \"P\"\n", 0.5);

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    EXPECT_EQ(doc.at("traceEvents").items[0]->at("name").str,
              "flip \"P\"\n");
}

TEST(TraceEventWriterTest, TrackNamesWithSpecialCharactersStayValid)
{
    TraceEventWriter w;
    w.setTrackName(0, "disk \"0\"\t\\backslash");
    w.complete(0, "busy", 0.0, 1.0);

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    EXPECT_EQ(doc.at("traceEvents").items[0]->at("args").at("name").str,
              "disk \"0\"\t\\backslash");
}

TEST(TraceEventWriterTest, ZeroDurationSpansAreKept)
{
    TraceEventWriter w;
    w.complete(0, "instant-phase", 2.0, 2.0);

    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    const auto &events = doc.at("traceEvents").items;
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0]->at("ph").str, "X");
    EXPECT_DOUBLE_EQ(events[0]->at("dur").number, 0.0);
    EXPECT_DOUBLE_EQ(events[0]->at("ts").number, 2.0e6);
}

TEST(TraceEventWriterTest, EmptyRunStillWritesAValidDocument)
{
    TraceEventWriter w;
    std::ostringstream os;
    w.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.at("traceEvents").isArray());
    EXPECT_TRUE(doc.at("traceEvents").items.empty());
    EXPECT_EQ(w.eventCount(), 0u);
}

} // namespace
} // namespace pacache::obs
