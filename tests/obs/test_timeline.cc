#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "core/experiment.hh"
#include "json_check.hh"
#include "obs/observer.hh"
#include "obs/timeline.hh"
#include "trace/synthetic.hh"

namespace pacache::obs
{
namespace
{

Trace
smallTrace(uint64_t seed = 1)
{
    SyntheticParams p;
    p.numRequests = 3000;
    p.numDisks = 4;
    p.arrival = ArrivalModel::exponential(100.0);
    p.writeRatio = 0.2;
    p.address.footprintBlocks = 500;
    p.seed = seed;
    return generateSynthetic(p);
}

/** Sink that keeps every row for post-run reconciliation. */
class CollectingSink : public TimelineSink
{
  public:
    void emit(const TimelineRow &row) override { rows.push_back(row); }

    std::vector<TimelineRow> rows;
};

TEST(TimelineConsistencyTest, RowSumsReconcileWithFinalAggregates)
{
    const Trace t = smallTrace();

    SimObserver observer;
    CollectingSink sink;
    observer.attachTimeline(&sink, 30.0);

    ExperimentConfig cfg;
    cfg.cacheBlocks = 256;
    cfg.policy = PolicyKind::PALRU;
    cfg.dpm = DpmChoice::Practical;
    cfg.pa.epochLength = 60.0;
    cfg.observer = &observer;
    const ExperimentResult r = runExperiment(t, cfg);

    ASSERT_GT(sink.rows.size(), 1u);

    uint64_t accesses = 0, hits = 0, spin_ups = 0, spin_downs = 0;
    uint64_t resp_count = 0;
    double resp_sum = 0;
    Energy energy = 0;
    std::vector<uint64_t> misses(r.diskAccesses.size(), 0);
    for (const TimelineRow &row : sink.rows) {
        accesses += row.accesses;
        hits += row.hits;
        spin_ups += row.spinUps;
        spin_downs += row.spinDowns;
        resp_count += row.responseCount;
        resp_sum += row.responseSum;
        energy += row.totalEnergy();
        ASSERT_EQ(row.missesPerDisk.size(), misses.size());
        for (std::size_t d = 0; d < misses.size(); ++d)
            misses[d] += row.missesPerDisk[d];
    }

    // Every row is a delta of consecutive cumulative snapshots and a
    // final row flushes the remainder at the horizon, so the sums
    // telescope to the end-of-run aggregates.
    EXPECT_EQ(accesses, r.cache.accesses);
    EXPECT_EQ(hits, r.cache.hits);
    EXPECT_EQ(spin_ups, r.energy.spinUps);
    EXPECT_EQ(spin_downs, r.energy.spinDowns);
    EXPECT_EQ(resp_count, r.responses.count());
    EXPECT_NEAR(resp_sum, r.responses.sum(), 1e-6);
    EXPECT_NEAR(energy, r.energy.total(),
                1e-6 * std::max(1.0, r.energy.total()));
    for (std::size_t d = 0; d < misses.size(); ++d)
        EXPECT_EQ(misses[d], r.diskAccesses[d]) << "disk " << d;
}

TEST(TimelineConsistencyTest, RowsTileTheSimulatedTimeAxis)
{
    const Trace t = smallTrace(7);

    SimObserver observer;
    CollectingSink sink;
    observer.attachTimeline(&sink, 25.0);

    ExperimentConfig cfg;
    cfg.cacheBlocks = 128;
    cfg.observer = &observer;
    runExperiment(t, cfg);

    ASSERT_FALSE(sink.rows.empty());
    EXPECT_DOUBLE_EQ(sink.rows.front().tStart, 0.0);
    for (std::size_t i = 0; i < sink.rows.size(); ++i) {
        EXPECT_EQ(sink.rows[i].index, i);
        EXPECT_GT(sink.rows[i].tEnd, sink.rows[i].tStart);
        if (i > 0) {
            EXPECT_DOUBLE_EQ(sink.rows[i].tStart,
                             sink.rows[i - 1].tEnd);
        }
    }
}

TEST(TimelineWriterTest, JsonlRowsParseAndCarryTheRowFields)
{
    TimelineRow row;
    row.index = 2;
    row.tStart = 60.0;
    row.tEnd = 90.0;
    row.accesses = 100;
    row.hits = 40;
    row.missesPerDisk = {30, 30};
    row.idleEnergyPerMode = {5.0, 2.5};
    row.serviceEnergy = 1.5;
    row.spinUpEnergy = 3.0;
    row.spinDownEnergy = 0.5;
    row.spinUps = 2;
    row.spinDowns = 3;
    row.responseCount = 100;
    row.responseSum = 0.25;
    row.prioritySet = {0};

    std::ostringstream os;
    TimelineWriter writer(os, TimelineWriter::Format::Jsonl);
    writer.emit(row);

    const testjson::Value doc = testjson::parse(os.str());
    EXPECT_DOUBLE_EQ(doc.at("epoch").number, 2.0);
    EXPECT_DOUBLE_EQ(doc.at("t_start").number, 60.0);
    EXPECT_DOUBLE_EQ(doc.at("t_end").number, 90.0);
    EXPECT_DOUBLE_EQ(doc.at("accesses").number, 100.0);
    EXPECT_DOUBLE_EQ(doc.at("hit_ratio").number, 0.4);
    EXPECT_DOUBLE_EQ(doc.at("total_energy_j").number, 12.5);
    EXPECT_DOUBLE_EQ(doc.at("mean_response_ms").number, 2.5);
    ASSERT_EQ(doc.at("misses_per_disk").items.size(), 2u);
    ASSERT_EQ(doc.at("priority_disks").items.size(), 1u);
    EXPECT_DOUBLE_EQ(doc.at("priority_disks").items[0]->number, 0.0);
}

TEST(TimelineWriterTest, CsvHasOneHeaderAndMatchingColumns)
{
    TimelineRow row;
    row.tEnd = 30.0;
    row.accesses = 10;
    row.hits = 5;
    row.missesPerDisk = {5};
    row.idleEnergyPerMode = {1.0};

    std::ostringstream os;
    TimelineWriter writer(os, TimelineWriter::Format::Csv);
    writer.emit(row);
    row.index = 1;
    row.tStart = 30.0;
    row.tEnd = 60.0;
    writer.emit(row);

    std::istringstream in(os.str());
    std::string header, row1, row2, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row1));
    ASSERT_TRUE(std::getline(in, row2));
    EXPECT_FALSE(std::getline(in, extra));

    const auto columns = [](const std::string &line) {
        return std::count(line.begin(), line.end(), ',') + 1;
    };
    EXPECT_EQ(columns(header), columns(row1));
    EXPECT_EQ(columns(header), columns(row2));
    EXPECT_EQ(header.substr(0, 5), "epoch");
}

TEST(TimelineWriterTest, FormatFollowsTheFileExtension)
{
    EXPECT_EQ(TimelineWriter::formatForPath("out.csv"),
              TimelineWriter::Format::Csv);
    EXPECT_EQ(TimelineWriter::formatForPath("out.jsonl"),
              TimelineWriter::Format::Jsonl);
    EXPECT_EQ(TimelineWriter::formatForPath("out"),
              TimelineWriter::Format::Jsonl);
    EXPECT_EQ(TimelineWriter::formatForPath("dir.csv/out.jsonl"),
              TimelineWriter::Format::Jsonl);
}

} // namespace
} // namespace pacache::obs
