#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "json_check.hh"
#include "obs/energy_ledger.hh"
#include "trace/workloads.hh"
#include "util/json.hh"

namespace pacache::obs
{
namespace
{

/** A hand-built breakdown whose rows reconcile exactly. */
EnergyStats
consistentStats()
{
    EnergyStats s(3);
    s.serviceEnergy = 120.0;
    s.idleEnergyPerMode = {40.0, 12.5, 3.25};
    s.spinDownEnergy = 6.0;
    s.spinUpEnergy = 27.0;
    s.spinUps = 3;
    s.attributeSpinUp(WakeCause::DemandColdMiss, 9.0);
    s.attributeSpinUp(WakeCause::CapacityMiss, 9.0);
    s.attributeSpinUp(WakeCause::EvictionWriteback, 9.0);
    return s;
}

TEST(EnergyLedgerTest, ConsistentStatsConserve)
{
    const EnergyStats s = consistentStats();
    EXPECT_LE(ledgerRelError(s), kLedgerConservationTol);

    EnergyLedger ledger({"ACTIVE", "IDLE", "STANDBY"});
    ledger.addDisk("disk0", s);
    ledger.addDisk("disk1", s);
    EXPECT_TRUE(ledger.conserves());
    EXPECT_DOUBLE_EQ(ledger.total().spinUpEnergy, 54.0);
    EXPECT_EQ(ledger.total().spinUps, 6u);
}

TEST(EnergyLedgerTest, CountMismatchIsAFullViolation)
{
    EnergyStats s = consistentStats();
    ++s.spinUps; // one transition never attributed
    EXPECT_DOUBLE_EQ(ledgerRelError(s), 1.0);

    EnergyLedger ledger;
    ledger.addDisk("disk0", s);
    EXPECT_FALSE(ledger.conserves());
}

TEST(EnergyLedgerTest, EnergyMismatchScalesRelatively)
{
    EnergyStats s = consistentStats();
    s.spinUpEnergyByCause[0] += 1.0; // cause rows drift from total
    const double err = ledgerRelError(s);
    EXPECT_GT(err, kLedgerConservationTol);
    EXPECT_LT(err, 1.0);
}

TEST(EnergyLedgerTest, MaxRelErrorCoversDisksAndAggregate)
{
    EnergyStats bad = consistentStats();
    ++bad.spinUps;
    const std::vector<EnergyStats> disks{consistentStats(), bad};
    EXPECT_DOUBLE_EQ(ledgerMaxRelError(disks), 1.0);

    const std::vector<EnergyStats> good{consistentStats(),
                                        consistentStats()};
    EXPECT_LE(ledgerMaxRelError(good), kLedgerConservationTol);
}

TEST(EnergyLedgerTest, JsonSchemaAndReconciliation)
{
    EnergyLedger ledger({"ACTIVE", "IDLE", "STANDBY"});
    ledger.addDisk("disk0", consistentStats());

    std::ostringstream os;
    {
        JsonWriter json(os);
        ledger.writeJsonValue(json);
        json.finish();
    }
    const testjson::Value doc = testjson::parse(os.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("mode_names").items.size(), 3u);
    const testjson::Value &disk = doc.at("disks").at("disk0");
    EXPECT_DOUBLE_EQ(disk.at("active_j").number, 120.0);
    EXPECT_DOUBLE_EQ(disk.at("idle_per_mode_j").at("IDLE").number,
                     12.5);
    EXPECT_DOUBLE_EQ(disk.at("spinup_j").number, 27.0);
    EXPECT_DOUBLE_EQ(
        disk.at("spinups_by_cause").at("capacity_miss").number, 1.0);
    EXPECT_DOUBLE_EQ(disk.at("spinup_energy_by_cause_j")
                         .at("eviction_writeback")
                         .number,
                     9.0);
    // Rows reconcile: active + idle + spinup + spindown == total_j.
    const double rows = disk.at("active_j").number + 40.0 + 12.5 +
                        3.25 + disk.at("spinup_j").number +
                        disk.at("spindown_j").number;
    EXPECT_NEAR(rows, disk.at("total_j").number,
                1e-9 * disk.at("total_j").number);
    EXPECT_TRUE(doc.at("conserves").boolean);
    EXPECT_LE(doc.at("max_conservation_rel_error").number,
              kLedgerConservationTol);
}

TEST(EnergyLedgerTest, TableReportsConservationVerdict)
{
    EnergyLedger ledger;
    ledger.addDisk("disk0", consistentStats());
    std::ostringstream os;
    ledger.writeTable(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("energy ledger"), std::string::npos);
    EXPECT_NE(text.find("demand_cold_miss"), std::string::npos);
    EXPECT_NE(text.find("(ok)"), std::string::npos);
    EXPECT_EQ(text.find("VIOLATED"), std::string::npos);
}

/** End to end: a real simulated run's ledger conserves per disk. */
TEST(EnergyLedgerTest, SimulatedRunsConserveAcrossWritePolicies)
{
    OltpParams params;
    params.duration = 1200.0;
    const Trace trace = makeOltpTrace(params);
    for (const WritePolicy wp :
         {WritePolicy::WriteThrough, WritePolicy::WriteBack,
          WritePolicy::WriteBackEagerUpdate,
          WritePolicy::WriteThroughDeferredUpdate}) {
        ExperimentConfig cfg;
        cfg.policy = PolicyKind::LRU;
        cfg.dpm = DpmChoice::Practical;
        cfg.storage.writePolicy = wp;
        cfg.cacheBlocks = 256;
        const ExperimentResult r = runExperiment(trace, cfg);
        EXPECT_LE(ledgerMaxRelError(r.perDisk), kLedgerConservationTol)
            << "write policy " << static_cast<int>(wp);
    }
}

TEST(EnergyLedgerTest, OraclePricingConserves)
{
    OltpParams params;
    params.duration = 1200.0;
    const Trace trace = makeOltpTrace(params);
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::LRU;
    cfg.dpm = DpmChoice::Oracle;
    cfg.cacheBlocks = 256;
    const ExperimentResult r = runExperiment(trace, cfg);
    EXPECT_LE(ledgerMaxRelError(r.perDisk), kLedgerConservationTol);
}

} // namespace
} // namespace pacache::obs
