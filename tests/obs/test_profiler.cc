#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "json_check.hh"
#include "obs/profiler.hh"
#include "obs/trace_writer.hh"

namespace pacache::obs
{
namespace
{

TEST(ProfilerTest, AggregatesPhasesInFirstEnteredOrder)
{
    Profiler prof;
    {
        const ProfileScope a(&prof, "ingest");
    }
    {
        const ProfileScope b(&prof, "replay");
    }
    {
        const ProfileScope c(&prof, "replay");
    }
    const auto phases = prof.phases();
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].name, "ingest");
    EXPECT_EQ(phases[0].calls, 1u);
    EXPECT_EQ(phases[1].name, "replay");
    EXPECT_EQ(phases[1].calls, 2u);
}

TEST(ProfilerTest, SelfTimeExcludesChildren)
{
    Profiler prof;
    prof.enter("outer");
    prof.enter("inner");
    prof.exit();
    prof.exit();

    const auto phases = prof.phases();
    ASSERT_EQ(phases.size(), 2u);
    const ProfilePhase &outer = phases[0];
    const ProfilePhase &inner = phases[1];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.name, "inner");
    // outer total covers inner total; outer self excludes it.
    EXPECT_GE(outer.totalSeconds, inner.totalSeconds);
    EXPECT_NEAR(outer.selfSeconds,
                outer.totalSeconds - inner.totalSeconds, 1e-9);
    EXPECT_GE(inner.selfSeconds, 0.0);
    EXPECT_DOUBLE_EQ(inner.selfSeconds, inner.totalSeconds);
}

TEST(ProfilerTest, NullScopeIsANoOp)
{
    // Must not crash and must not need a profiler at all.
    const ProfileScope scope(nullptr, "anything");
}

TEST(ProfilerTest, EmitTracePutsSpansOnTheProfilerTrack)
{
    Profiler prof;
    prof.enter("replay");
    prof.exit();

    TraceEventWriter trace;
    prof.emitTrace(trace);
    std::ostringstream os;
    trace.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());
    const auto &events = doc.at("traceEvents").items;
    ASSERT_EQ(events.size(), 2u); // track metadata + one span
    EXPECT_EQ(events[0]->at("ph").str, "M");
    EXPECT_EQ(events[1]->at("ph").str, "X");
    EXPECT_EQ(events[1]->at("name").str, "replay");
    EXPECT_DOUBLE_EQ(events[1]->at("tid").number,
                     static_cast<double>(Profiler::kProfileTrack));
    EXPECT_GE(events[1]->at("dur").number, 0.0);
}

TEST(ProfilerTest, SummaryListsEveryPhase)
{
    Profiler prof;
    {
        const ProfileScope a(&prof, "oracle_precompute");
    }
    {
        const ProfileScope b(&prof, "replay");
    }
    std::ostringstream os;
    prof.writeSummary(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("profile"), std::string::npos);
    EXPECT_NE(text.find("oracle_precompute"), std::string::npos);
    EXPECT_NE(text.find("replay"), std::string::npos);
}

TEST(ProfilerTest, EmptyProfilerProducesEmptyPhasesAndSummary)
{
    Profiler prof;
    EXPECT_TRUE(prof.phases().empty());
    EXPECT_GE(prof.elapsed(), 0.0);
    std::ostringstream os;
    prof.writeSummary(os); // must not crash on zero phases
    TraceEventWriter trace;
    prof.emitTrace(trace);
    std::ostringstream json;
    trace.writeJson(json);
    EXPECT_TRUE(testjson::parse(json.str()).isObject());
}

} // namespace
} // namespace pacache::obs
