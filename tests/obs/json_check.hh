/**
 * @file
 * Minimal recursive-descent JSON parser for tests: validates syntax
 * strictly (no trailing garbage, no trailing commas) and exposes just
 * enough of a document model to assert on emitted files. Not for
 * production use — the simulator only ever *writes* JSON.
 */

#ifndef PACACHE_TESTS_OBS_JSON_CHECK_HH
#define PACACHE_TESTS_OBS_JSON_CHECK_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace pacache::testjson
{

struct Value;
using ValuePtr = std::shared_ptr<Value>;

/** One parsed JSON value. */
struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<ValuePtr> items;
    std::map<std::string, ValuePtr> members;

    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    const Value &
    at(const std::string &key) const
    {
        auto it = members.find(key);
        if (it == members.end())
            throw std::runtime_error("missing key: " + key);
        return *it->second;
    }

    bool has(const std::string &key) const
    {
        return members.count(key) > 0;
    }
};

/** Strict parser over a complete document string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos != s.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + s[pos] +
                 "'");
        ++pos;
    }

    Value
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            Value v;
            v.type = Value::Type::String;
            v.str = parseString();
            return v;
          }
          case 't':
          case 'f': return parseBool();
          case 'n': parseLiteral("null"); return Value{};
          default: return parseNumber();
        }
    }

    void
    parseLiteral(const char *lit)
    {
        skipWs();
        for (const char *p = lit; *p; ++p) {
            if (pos >= s.size() || s[pos] != *p)
                fail(std::string("bad literal, wanted ") + lit);
            ++pos;
        }
    }

    Value
    parseBool()
    {
        Value v;
        v.type = Value::Type::Bool;
        if (s[pos] == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
            v.boolean = false;
        }
        return v;
    }

    Value
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            fail("expected a number");
        Value v;
        v.type = Value::Type::Number;
        char *end = nullptr;
        const std::string text = s.substr(start, pos - start);
        v.number = std::strtod(text.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number: " + text);
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            const char c = s[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= s.size())
                    fail("unterminated escape");
                const char e = s[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        fail("truncated \\u escape");
                    // Tests only need round-trip safety for ASCII;
                    // decode the code unit as a single byte when it
                    // fits, otherwise keep a replacement character.
                    const std::string hex = s.substr(pos, 4);
                    pos += 4;
                    const long cp = std::strtol(hex.c_str(), nullptr, 16);
                    if (cp < 0x80)
                        out += static_cast<char>(cp);
                    else
                        out += '?';
                    break;
                  }
                  default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value v;
        v.type = Value::Type::Array;
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.items.push_back(
                std::make_shared<Value>(parseValue()));
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value v;
        v.type = Value::Type::Object;
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            const std::string key = parseString();
            expect(':');
            v.members[key] =
                std::make_shared<Value>(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** Parse or throw; convenience for EXPECT_NO_THROW-style checks. */
inline Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace pacache::testjson

#endif // PACACHE_TESTS_OBS_JSON_CHECK_HH
