#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "json_check.hh"
#include "obs/metrics.hh"

namespace pacache::obs
{
namespace
{

TEST(MetricRegistryTest, CounterIsMonotonicAndShared)
{
    MetricRegistry reg;
    Counter &c = reg.counter("disk.0.spinups");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    // Find-or-create returns the same instrument.
    Counter &again = reg.counter("disk.0.spinups");
    EXPECT_EQ(&again, &c);
    again.inc();
    EXPECT_EQ(c.value(), 43u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, GaugeIsLastWriteWins)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("cache.hit_ratio");
    g.set(0.25);
    g.set(0.75);
    EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(MetricRegistryTest, HistogramTracksExactExtremesAndCount)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("responses.seconds", 1e-4, 1e2);
    for (int i = 1; i <= 100; ++i)
        h.record(i * 0.01); // 0.01 .. 1.00
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 0.01);
    EXPECT_DOUBLE_EQ(h.max(), 1.00);
    EXPECT_NEAR(h.mean(), 0.505, 1e-9);
}

TEST(MetricRegistryTest, HistogramPercentilesLandInTheRightBins)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("lat", 1e-4, 1e2);
    for (int i = 1; i <= 1000; ++i)
        h.record(i * 0.001); // uniform over (0, 1]

    // Geometric bins give interpolated quantiles; generous factor-of-
    // bin-width tolerance, not exact equality.
    EXPECT_NEAR(h.percentile(0.50), 0.5, 0.5 * 0.5);
    EXPECT_NEAR(h.percentile(0.95), 0.95, 0.95 * 0.5);
    EXPECT_GT(h.percentile(0.99), h.percentile(0.50));
    EXPECT_LE(h.percentile(1.0), h.max() * 1.5);
}

TEST(MetricRegistryTest, KindCollisionIsFatal)
{
    MetricRegistry reg;
    reg.counter("cache.evictions.total");
    EXPECT_THROW(reg.gauge("cache.evictions.total"), std::runtime_error);
    EXPECT_THROW(reg.histogram("cache.evictions.total"),
                 std::runtime_error);
}

TEST(MetricRegistryTest, DotPrefixCollisionIsFatal)
{
    MetricRegistry reg;
    reg.counter("cache.evictions");
    // Existing name would become both a leaf and an object.
    EXPECT_THROW(reg.counter("cache.evictions.priority"),
                 std::runtime_error);

    // The other direction: new name is a prefix of an existing one.
    reg.counter("wtdu.log.writes");
    EXPECT_THROW(reg.counter("wtdu.log"), std::runtime_error);

    // Sibling leaves under a shared object are fine.
    EXPECT_NO_THROW(reg.counter("wtdu.log.recycles"));
}

TEST(MetricRegistryTest, MalformedNamesAreFatal)
{
    MetricRegistry reg;
    EXPECT_THROW(reg.counter(""), std::runtime_error);
    EXPECT_THROW(reg.counter(".leading"), std::runtime_error);
    EXPECT_THROW(reg.counter("trailing."), std::runtime_error);
    EXPECT_THROW(reg.counter("empty..segment"), std::runtime_error);
}

TEST(MetricRegistryTest, JsonSnapshotNestsAlongDots)
{
    MetricRegistry reg;
    reg.counter("disk.0.spinups").inc(3);
    reg.counter("disk.1.spinups").inc(5);
    reg.gauge("cache.hit_ratio").set(0.5);
    reg.counter("total").inc(7);
    reg.histogram("lat", 1e-3, 1e3).record(2.0);

    std::ostringstream os;
    reg.writeJson(os);
    const testjson::Value doc = testjson::parse(os.str());

    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.at("disk").at("0").at("spinups").number, 3.0);
    EXPECT_DOUBLE_EQ(doc.at("disk").at("1").at("spinups").number, 5.0);
    EXPECT_DOUBLE_EQ(doc.at("cache").at("hit_ratio").number, 0.5);
    EXPECT_DOUBLE_EQ(doc.at("total").number, 7.0);
    const testjson::Value &lat = doc.at("lat");
    ASSERT_TRUE(lat.isObject());
    EXPECT_DOUBLE_EQ(lat.at("count").number, 1.0);
    EXPECT_DOUBLE_EQ(lat.at("min").number, 2.0);
    EXPECT_DOUBLE_EQ(lat.at("max").number, 2.0);
}

TEST(MetricRegistryTest, TextSnapshotIsFlatAndNameOrdered)
{
    MetricRegistry reg;
    reg.counter("b.two").inc(2);
    reg.counter("a.one").inc(1);
    reg.gauge("c").set(3.5);

    std::ostringstream os;
    reg.writeText(os);
    EXPECT_EQ(os.str(), "a.one 1\nb.two 2\nc 3.5\n");
}

TEST(MetricRegistryTest, TextSnapshotExpandsHistograms)
{
    MetricRegistry reg;
    reg.histogram("lat", 1e-3, 1e3).record(1.0);

    std::ostringstream os;
    reg.writeText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("lat.count 1"), std::string::npos);
    EXPECT_NE(text.find("lat.mean"), std::string::npos);
    EXPECT_NE(text.find("lat.p50"), std::string::npos);
    EXPECT_NE(text.find("lat.p95"), std::string::npos);
    EXPECT_NE(text.find("lat.p99"), std::string::npos);
    EXPECT_NE(text.find("lat.max"), std::string::npos);
}

TEST(MetricRegistryTest, PrometheusExpositionIsFlatAndSanitized)
{
    MetricRegistry reg;
    reg.counter("disk.0.spinups").inc(3);
    reg.gauge("cache.hit_ratio").set(0.5);

    std::ostringstream os;
    reg.writePrometheus(os);
    EXPECT_EQ(os.str(), "# TYPE cache_hit_ratio gauge\n"
                        "cache_hit_ratio 0.5\n"
                        "# TYPE disk_0_spinups counter\n"
                        "disk_0_spinups 3\n");
}

TEST(MetricRegistryTest, PrometheusExpandsHistogramsToGaugeLeaves)
{
    MetricRegistry reg;
    reg.histogram("lat", 1e-3, 1e3).record(1.0);

    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();
    for (const char *leaf :
         {"lat_count ", "lat_mean ", "lat_p50 ", "lat_p95 ",
          "lat_p99 ", "lat_max "}) {
        EXPECT_NE(text.find(leaf), std::string::npos) << leaf;
        EXPECT_NE(text.find(std::string("# TYPE ") +
                            std::string(leaf).substr(
                                0, std::string(leaf).size() - 1) +
                            " gauge"),
                  std::string::npos)
            << leaf;
    }
}

/**
 * Round trip: every non-comment exposition line is "name value" with
 * a sanitized name, parses back as a double, and matches the live
 * instrument it came from.
 */
TEST(MetricRegistryTest, PrometheusRoundTripsValues)
{
    MetricRegistry reg;
    reg.counter("runner.sweep.runs").inc(12);
    reg.gauge("run.wall_ms").set(431.25);
    reg.gauge("9starts.with.digit").set(-1.5);

    std::ostringstream os;
    reg.writePrometheus(os);

    std::map<std::string, double> parsed;
    std::istringstream in(os.str());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name = line.substr(0, space);
        for (const char c : name) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_';
            EXPECT_TRUE(ok) << "unsanitized char in " << name;
        }
        EXPECT_FALSE(name[0] >= '0' && name[0] <= '9') << name;
        parsed[name] = std::stod(line.substr(space + 1));
    }
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_DOUBLE_EQ(parsed.at("runner_sweep_runs"), 12.0);
    EXPECT_DOUBLE_EQ(parsed.at("run_wall_ms"), 431.25);
    EXPECT_DOUBLE_EQ(parsed.at("_9starts_with_digit"), -1.5);
}

} // namespace
} // namespace pacache::obs
