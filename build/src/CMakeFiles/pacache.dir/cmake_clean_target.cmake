file(REMOVE_RECURSE
  "libpacache.a"
)
