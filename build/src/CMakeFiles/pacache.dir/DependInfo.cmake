
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/arc.cc" "src/CMakeFiles/pacache.dir/cache/arc.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/arc.cc.o.d"
  "/root/repo/src/cache/belady.cc" "src/CMakeFiles/pacache.dir/cache/belady.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/belady.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/pacache.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/clock.cc" "src/CMakeFiles/pacache.dir/cache/clock.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/clock.cc.o.d"
  "/root/repo/src/cache/fifo.cc" "src/CMakeFiles/pacache.dir/cache/fifo.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/fifo.cc.o.d"
  "/root/repo/src/cache/future.cc" "src/CMakeFiles/pacache.dir/cache/future.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/future.cc.o.d"
  "/root/repo/src/cache/lirs.cc" "src/CMakeFiles/pacache.dir/cache/lirs.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/lirs.cc.o.d"
  "/root/repo/src/cache/lru.cc" "src/CMakeFiles/pacache.dir/cache/lru.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/lru.cc.o.d"
  "/root/repo/src/cache/mq.cc" "src/CMakeFiles/pacache.dir/cache/mq.cc.o" "gcc" "src/CMakeFiles/pacache.dir/cache/mq.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/pacache.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/opg.cc" "src/CMakeFiles/pacache.dir/core/opg.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/opg.cc.o.d"
  "/root/repo/src/core/optimal.cc" "src/CMakeFiles/pacache.dir/core/optimal.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/optimal.cc.o.d"
  "/root/repo/src/core/pa_classifier.cc" "src/CMakeFiles/pacache.dir/core/pa_classifier.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/pa_classifier.cc.o.d"
  "/root/repo/src/core/pa_lru.cc" "src/CMakeFiles/pacache.dir/core/pa_lru.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/pa_lru.cc.o.d"
  "/root/repo/src/core/storage_system.cc" "src/CMakeFiles/pacache.dir/core/storage_system.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/storage_system.cc.o.d"
  "/root/repo/src/core/write_policy.cc" "src/CMakeFiles/pacache.dir/core/write_policy.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/write_policy.cc.o.d"
  "/root/repo/src/core/wtdu_log.cc" "src/CMakeFiles/pacache.dir/core/wtdu_log.cc.o" "gcc" "src/CMakeFiles/pacache.dir/core/wtdu_log.cc.o.d"
  "/root/repo/src/disk/adaptive_dpm.cc" "src/CMakeFiles/pacache.dir/disk/adaptive_dpm.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/adaptive_dpm.cc.o.d"
  "/root/repo/src/disk/disk.cc" "src/CMakeFiles/pacache.dir/disk/disk.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/disk.cc.o.d"
  "/root/repo/src/disk/disk_array.cc" "src/CMakeFiles/pacache.dir/disk/disk_array.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/disk_array.cc.o.d"
  "/root/repo/src/disk/oracle_dpm.cc" "src/CMakeFiles/pacache.dir/disk/oracle_dpm.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/oracle_dpm.cc.o.d"
  "/root/repo/src/disk/power_model.cc" "src/CMakeFiles/pacache.dir/disk/power_model.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/power_model.cc.o.d"
  "/root/repo/src/disk/practical_dpm.cc" "src/CMakeFiles/pacache.dir/disk/practical_dpm.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/practical_dpm.cc.o.d"
  "/root/repo/src/disk/service_model.cc" "src/CMakeFiles/pacache.dir/disk/service_model.cc.o" "gcc" "src/CMakeFiles/pacache.dir/disk/service_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/pacache.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/pacache.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/stats/energy_stats.cc" "src/CMakeFiles/pacache.dir/stats/energy_stats.cc.o" "gcc" "src/CMakeFiles/pacache.dir/stats/energy_stats.cc.o.d"
  "/root/repo/src/stats/response_stats.cc" "src/CMakeFiles/pacache.dir/stats/response_stats.cc.o" "gcc" "src/CMakeFiles/pacache.dir/stats/response_stats.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/CMakeFiles/pacache.dir/trace/record.cc.o" "gcc" "src/CMakeFiles/pacache.dir/trace/record.cc.o.d"
  "/root/repo/src/trace/stats.cc" "src/CMakeFiles/pacache.dir/trace/stats.cc.o" "gcc" "src/CMakeFiles/pacache.dir/trace/stats.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/pacache.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/pacache.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/pacache.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/pacache.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/pacache.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/pacache.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/pacache.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/pacache.dir/trace/workloads.cc.o.d"
  "/root/repo/src/util/bloom_filter.cc" "src/CMakeFiles/pacache.dir/util/bloom_filter.cc.o" "gcc" "src/CMakeFiles/pacache.dir/util/bloom_filter.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/pacache.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/pacache.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/pacache.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/pacache.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/pacache.dir/util/random.cc.o" "gcc" "src/CMakeFiles/pacache.dir/util/random.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/pacache.dir/util/table.cc.o" "gcc" "src/CMakeFiles/pacache.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
