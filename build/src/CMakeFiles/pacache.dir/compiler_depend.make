# Empty compiler generated dependencies file for pacache.
# This may be replaced when dependencies are built.
