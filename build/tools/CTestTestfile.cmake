# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools.sim_smoke "/root/repo/build/tools/pacache_sim" "--workload" "synthetic" "--requests" "2000" "--policy" "pa-lru" "--dpm" "practical" "--per-disk")
set_tests_properties(tools.sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.sim_help "/root/repo/build/tools/pacache_sim" "--help")
set_tests_properties(tools.sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.sim_rejects_unknown_flag "/root/repo/build/tools/pacache_sim" "--no-such-flag")
set_tests_properties(tools.sim_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.tracegen_roundtrip "sh" "-c" "/root/repo/build/tools/pacache_tracegen --workload synthetic           --requests 500 --out /root/repo/build/tools/t.txt &&           /root/repo/build/tools/pacache_sim --trace           /root/repo/build/tools/t.txt --policy arc")
set_tests_properties(tools.tracegen_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
