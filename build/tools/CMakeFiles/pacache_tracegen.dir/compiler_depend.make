# Empty compiler generated dependencies file for pacache_tracegen.
# This may be replaced when dependencies are built.
