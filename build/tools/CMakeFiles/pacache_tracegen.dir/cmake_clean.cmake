file(REMOVE_RECURSE
  "CMakeFiles/pacache_tracegen.dir/pacache_tracegen.cc.o"
  "CMakeFiles/pacache_tracegen.dir/pacache_tracegen.cc.o.d"
  "pacache_tracegen"
  "pacache_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacache_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
