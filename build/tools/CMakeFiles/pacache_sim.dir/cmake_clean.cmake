file(REMOVE_RECURSE
  "CMakeFiles/pacache_sim.dir/pacache_sim.cc.o"
  "CMakeFiles/pacache_sim.dir/pacache_sim.cc.o.d"
  "pacache_sim"
  "pacache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
