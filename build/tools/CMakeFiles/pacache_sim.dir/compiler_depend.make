# Empty compiler generated dependencies file for pacache_sim.
# This may be replaced when dependencies are built.
