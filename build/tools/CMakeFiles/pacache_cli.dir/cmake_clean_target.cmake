file(REMOVE_RECURSE
  "libpacache_cli.a"
)
