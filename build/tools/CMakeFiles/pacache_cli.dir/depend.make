# Empty dependencies file for pacache_cli.
# This may be replaced when dependencies are built.
