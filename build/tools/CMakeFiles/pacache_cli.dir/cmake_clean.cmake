file(REMOVE_RECURSE
  "CMakeFiles/pacache_cli.dir/cli.cc.o"
  "CMakeFiles/pacache_cli.dir/cli.cc.o.d"
  "libpacache_cli.a"
  "libpacache_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
