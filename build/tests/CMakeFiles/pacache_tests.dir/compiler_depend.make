# Empty compiler generated dependencies file for pacache_tests.
# This may be replaced when dependencies are built.
