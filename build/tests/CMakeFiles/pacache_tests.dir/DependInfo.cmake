
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/test_arc.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_arc.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_arc.cc.o.d"
  "/root/repo/tests/cache/test_belady.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_belady.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_belady.cc.o.d"
  "/root/repo/tests/cache/test_cache.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_cache.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_cache.cc.o.d"
  "/root/repo/tests/cache/test_clock.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_clock.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_clock.cc.o.d"
  "/root/repo/tests/cache/test_fifo.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_fifo.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_fifo.cc.o.d"
  "/root/repo/tests/cache/test_future.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_future.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_future.cc.o.d"
  "/root/repo/tests/cache/test_lirs.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_lirs.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_lirs.cc.o.d"
  "/root/repo/tests/cache/test_lru.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_lru.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_lru.cc.o.d"
  "/root/repo/tests/cache/test_mq.cc" "tests/CMakeFiles/pacache_tests.dir/cache/test_mq.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/cache/test_mq.cc.o.d"
  "/root/repo/tests/core/test_experiment.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_experiment.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_experiment.cc.o.d"
  "/root/repo/tests/core/test_opg.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_opg.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_opg.cc.o.d"
  "/root/repo/tests/core/test_optimal.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_optimal.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_optimal.cc.o.d"
  "/root/repo/tests/core/test_pa_classifier.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_pa_classifier.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_pa_classifier.cc.o.d"
  "/root/repo/tests/core/test_pa_lru.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_pa_lru.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_pa_lru.cc.o.d"
  "/root/repo/tests/core/test_prefetch.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_prefetch.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_prefetch.cc.o.d"
  "/root/repo/tests/core/test_storage_system.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_storage_system.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_storage_system.cc.o.d"
  "/root/repo/tests/core/test_write_policy.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_write_policy.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_write_policy.cc.o.d"
  "/root/repo/tests/core/test_wtdu_log.cc" "tests/CMakeFiles/pacache_tests.dir/core/test_wtdu_log.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/core/test_wtdu_log.cc.o.d"
  "/root/repo/tests/disk/test_disk.cc" "tests/CMakeFiles/pacache_tests.dir/disk/test_disk.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/disk/test_disk.cc.o.d"
  "/root/repo/tests/disk/test_dpm.cc" "tests/CMakeFiles/pacache_tests.dir/disk/test_dpm.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/disk/test_dpm.cc.o.d"
  "/root/repo/tests/disk/test_oracle_dpm.cc" "tests/CMakeFiles/pacache_tests.dir/disk/test_oracle_dpm.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/disk/test_oracle_dpm.cc.o.d"
  "/root/repo/tests/disk/test_power_model.cc" "tests/CMakeFiles/pacache_tests.dir/disk/test_power_model.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/disk/test_power_model.cc.o.d"
  "/root/repo/tests/disk/test_service_model.cc" "tests/CMakeFiles/pacache_tests.dir/disk/test_service_model.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/disk/test_service_model.cc.o.d"
  "/root/repo/tests/integration/test_paper_example.cc" "tests/CMakeFiles/pacache_tests.dir/integration/test_paper_example.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/integration/test_paper_example.cc.o.d"
  "/root/repo/tests/integration/test_replacement_energy.cc" "tests/CMakeFiles/pacache_tests.dir/integration/test_replacement_energy.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/integration/test_replacement_energy.cc.o.d"
  "/root/repo/tests/integration/test_system_edge_cases.cc" "tests/CMakeFiles/pacache_tests.dir/integration/test_system_edge_cases.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/integration/test_system_edge_cases.cc.o.d"
  "/root/repo/tests/property/test_dpm_competitive.cc" "tests/CMakeFiles/pacache_tests.dir/property/test_dpm_competitive.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/property/test_dpm_competitive.cc.o.d"
  "/root/repo/tests/property/test_invariants.cc" "tests/CMakeFiles/pacache_tests.dir/property/test_invariants.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/property/test_invariants.cc.o.d"
  "/root/repo/tests/property/test_opg_consistency.cc" "tests/CMakeFiles/pacache_tests.dir/property/test_opg_consistency.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/property/test_opg_consistency.cc.o.d"
  "/root/repo/tests/property/test_recovery.cc" "tests/CMakeFiles/pacache_tests.dir/property/test_recovery.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/property/test_recovery.cc.o.d"
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/pacache_tests.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/stats/test_stats.cc" "tests/CMakeFiles/pacache_tests.dir/stats/test_stats.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/stats/test_stats.cc.o.d"
  "/root/repo/tests/test_main.cc" "tests/CMakeFiles/pacache_tests.dir/test_main.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/test_main.cc.o.d"
  "/root/repo/tests/trace/test_record.cc" "tests/CMakeFiles/pacache_tests.dir/trace/test_record.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/trace/test_record.cc.o.d"
  "/root/repo/tests/trace/test_stats.cc" "tests/CMakeFiles/pacache_tests.dir/trace/test_stats.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/trace/test_stats.cc.o.d"
  "/root/repo/tests/trace/test_synthetic.cc" "tests/CMakeFiles/pacache_tests.dir/trace/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/trace/test_synthetic.cc.o.d"
  "/root/repo/tests/trace/test_trace.cc" "tests/CMakeFiles/pacache_tests.dir/trace/test_trace.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/trace/test_trace.cc.o.d"
  "/root/repo/tests/trace/test_workloads.cc" "tests/CMakeFiles/pacache_tests.dir/trace/test_workloads.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/trace/test_workloads.cc.o.d"
  "/root/repo/tests/util/test_bloom_filter.cc" "tests/CMakeFiles/pacache_tests.dir/util/test_bloom_filter.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/util/test_bloom_filter.cc.o.d"
  "/root/repo/tests/util/test_histogram.cc" "tests/CMakeFiles/pacache_tests.dir/util/test_histogram.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/util/test_histogram.cc.o.d"
  "/root/repo/tests/util/test_logging.cc" "tests/CMakeFiles/pacache_tests.dir/util/test_logging.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/util/test_logging.cc.o.d"
  "/root/repo/tests/util/test_random.cc" "tests/CMakeFiles/pacache_tests.dir/util/test_random.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/util/test_random.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/pacache_tests.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/pacache_tests.dir/util/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
