file(REMOVE_RECURSE
  "CMakeFiles/fig8_spinup.dir/fig8_spinup.cc.o"
  "CMakeFiles/fig8_spinup.dir/fig8_spinup.cc.o.d"
  "fig8_spinup"
  "fig8_spinup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spinup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
