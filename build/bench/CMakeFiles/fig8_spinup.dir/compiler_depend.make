# Empty compiler generated dependencies file for fig8_spinup.
# This may be replaced when dependencies are built.
