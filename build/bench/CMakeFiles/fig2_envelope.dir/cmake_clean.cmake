file(REMOVE_RECURSE
  "CMakeFiles/fig2_envelope.dir/fig2_envelope.cc.o"
  "CMakeFiles/fig2_envelope.dir/fig2_envelope.cc.o.d"
  "fig2_envelope"
  "fig2_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
