# Empty compiler generated dependencies file for fig2_envelope.
# This may be replaced when dependencies are built.
