file(REMOVE_RECURSE
  "CMakeFiles/fig6_replacement.dir/fig6_replacement.cc.o"
  "CMakeFiles/fig6_replacement.dir/fig6_replacement.cc.o.d"
  "fig6_replacement"
  "fig6_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
