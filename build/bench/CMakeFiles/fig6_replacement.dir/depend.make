# Empty dependencies file for fig6_replacement.
# This may be replaced when dependencies are built.
