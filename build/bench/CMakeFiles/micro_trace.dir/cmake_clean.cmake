file(REMOVE_RECURSE
  "CMakeFiles/micro_trace.dir/micro_trace.cc.o"
  "CMakeFiles/micro_trace.dir/micro_trace.cc.o.d"
  "micro_trace"
  "micro_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
