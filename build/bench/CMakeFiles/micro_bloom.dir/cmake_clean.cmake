file(REMOVE_RECURSE
  "CMakeFiles/micro_bloom.dir/micro_bloom.cc.o"
  "CMakeFiles/micro_bloom.dir/micro_bloom.cc.o.d"
  "micro_bloom"
  "micro_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
