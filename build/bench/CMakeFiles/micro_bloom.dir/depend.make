# Empty dependencies file for micro_bloom.
# This may be replaced when dependencies are built.
