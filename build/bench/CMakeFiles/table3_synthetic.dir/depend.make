# Empty dependencies file for table3_synthetic.
# This may be replaced when dependencies are built.
