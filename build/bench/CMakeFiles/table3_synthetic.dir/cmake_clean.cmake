file(REMOVE_RECURSE
  "CMakeFiles/table3_synthetic.dir/table3_synthetic.cc.o"
  "CMakeFiles/table3_synthetic.dir/table3_synthetic.cc.o.d"
  "table3_synthetic"
  "table3_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
