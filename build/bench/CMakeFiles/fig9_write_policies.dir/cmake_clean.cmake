file(REMOVE_RECURSE
  "CMakeFiles/fig9_write_policies.dir/fig9_write_policies.cc.o"
  "CMakeFiles/fig9_write_policies.dir/fig9_write_policies.cc.o.d"
  "fig9_write_policies"
  "fig9_write_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_write_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
