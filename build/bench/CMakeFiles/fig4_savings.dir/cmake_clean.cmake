file(REMOVE_RECURSE
  "CMakeFiles/fig4_savings.dir/fig4_savings.cc.o"
  "CMakeFiles/fig4_savings.dir/fig4_savings.cc.o.d"
  "fig4_savings"
  "fig4_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
