# Empty compiler generated dependencies file for fig4_savings.
# This may be replaced when dependencies are built.
