# Empty dependencies file for ablation_multispeed.
# This may be replaced when dependencies are built.
