file(REMOVE_RECURSE
  "CMakeFiles/ablation_multispeed.dir/ablation_multispeed.cc.o"
  "CMakeFiles/ablation_multispeed.dir/ablation_multispeed.cc.o.d"
  "ablation_multispeed"
  "ablation_multispeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multispeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
