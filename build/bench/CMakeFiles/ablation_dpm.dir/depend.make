# Empty dependencies file for ablation_dpm.
# This may be replaced when dependencies are built.
