file(REMOVE_RECURSE
  "CMakeFiles/ablation_dpm.dir/ablation_dpm.cc.o"
  "CMakeFiles/ablation_dpm.dir/ablation_dpm.cc.o.d"
  "ablation_dpm"
  "ablation_dpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
