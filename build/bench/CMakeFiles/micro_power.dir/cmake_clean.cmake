file(REMOVE_RECURSE
  "CMakeFiles/micro_power.dir/micro_power.cc.o"
  "CMakeFiles/micro_power.dir/micro_power.cc.o.d"
  "micro_power"
  "micro_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
