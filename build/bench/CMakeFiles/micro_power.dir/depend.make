# Empty dependencies file for micro_power.
# This may be replaced when dependencies are built.
