file(REMOVE_RECURSE
  "CMakeFiles/fig3_belady_example.dir/fig3_belady_example.cc.o"
  "CMakeFiles/fig3_belady_example.dir/fig3_belady_example.cc.o.d"
  "fig3_belady_example"
  "fig3_belady_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_belady_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
