# Empty dependencies file for write_policy_demo.
# This may be replaced when dependencies are built.
