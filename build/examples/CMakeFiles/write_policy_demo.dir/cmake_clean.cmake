file(REMOVE_RECURSE
  "CMakeFiles/write_policy_demo.dir/write_policy_demo.cpp.o"
  "CMakeFiles/write_policy_demo.dir/write_policy_demo.cpp.o.d"
  "write_policy_demo"
  "write_policy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_policy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
